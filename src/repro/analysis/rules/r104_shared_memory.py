"""R104 — resource hygiene: shm segments unlinked, file handles scoped.

``SharedMemory(create=True)`` allocates a kernel object that outlives
the process; a path that exits without ``unlink()`` leaks ``/dev/shm``
until reboot.  The engine's transport code unlinks exactly once on every
path (PR 6), and this rule keeps it that way: a scope that creates a
segment must contain an ``unlink()`` on its *success* flow (plain
statements, ``try`` body, or ``finally``) **and** one on an *error*
flow (``except`` handler or ``finally``).

The rule is scope-local by design — it cannot see ownership handoffs,
where the creator returns the segment name and a different scope
unlinks (the descriptor transport does exactly this).  Those sites are
correct by a cross-scope argument the linter cannot check, and carry a
``# reprolint: disable=R104`` with the justification in the comment.

In the storage tier (``resource_hygiene_modules``, i.e. ``store/``)
the rule additionally flags a bare ``open()`` whose result is not
managed by a ``with`` block: the shard cache writes block files on hot
sampling paths, and a handle that escapes its statement stays open
across error paths — on the same leak axis as an unlinked segment, so
it lives under the same code.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules.base import LintContext, Rule, dotted_name


def _creates_segment(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name is None or name.split(".")[-1] != "SharedMemory":
        return False
    for keyword in call.keywords:
        if keyword.arg == "create":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


class _ScopeScan(ast.NodeVisitor):
    """Collect, within one function scope, the segment-create calls and
    where unlink calls sit relative to error handling."""

    def __init__(self) -> None:
        self.creates: list[ast.Call] = []
        self.success_unlink = False
        self.error_unlink = False
        self._in_error_flow = 0

    # Nested scopes are scanned separately — don't descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Try(self, node: ast.Try) -> None:
        for child in node.body + node.orelse:
            self.visit(child)
        self._in_error_flow += 1
        for handler in node.handlers:
            self.visit(handler)
        self._in_error_flow -= 1
        # ``finally`` runs on both flows.
        for child in node.finalbody:
            self.visit(child)
            for sub in ast.walk(child):
                if self._is_unlink(sub):
                    self.error_unlink = True

    def _is_unlink(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "unlink"
        )

    def visit_Call(self, node: ast.Call) -> None:
        if _creates_segment(node):
            self.creates.append(node)
        if self._is_unlink(node):
            if self._in_error_flow:
                self.error_unlink = True
            else:
                self.success_unlink = True
        self.generic_visit(node)


class SharedMemoryUnlinkRule(Rule):
    code = "R104"
    description = (
        "SharedMemory(create=True) needs a reachable unlink() on every "
        "path of its scope (success and error); in storage-tier modules "
        "open() must be managed by a with block"
    )

    def _scopes(self, tree: ast.Module):
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _check_file_handles(self, context: LintContext) -> Iterator[Finding]:
        """Storage-tier extension: every bare ``open()`` call must be a
        ``with`` item's context expression, so the handle cannot outlive
        its statement on any path."""
        managed: set[int] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    managed.add(id(item.context_expr))
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "open"
                and id(node) not in managed
            ):
                yield context.finding(
                    node,
                    self.code,
                    "bare open() outside a with block in a storage-tier "
                    "module — the handle can outlive its statement on "
                    "error paths; use `with open(...) as ...`",
                )

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.config.is_resource_hygiene(context.module):
            yield from self._check_file_handles(context)
        for scope in self._scopes(context.tree):
            scan = _ScopeScan()
            body = scope.body if not isinstance(scope, ast.Module) else scope.body
            for statement in body:
                scan.visit(statement)
            if not scan.creates:
                continue
            missing = []
            if not scan.success_unlink:
                missing.append("success path")
            if not scan.error_unlink:
                missing.append("error path (except/finally)")
            if not missing:
                continue
            for call in scan.creates:
                yield context.finding(
                    call,
                    self.code,
                    f"SharedMemory(create=True) without a reachable unlink() "
                    f"on the {' or '.join(missing)} of this scope — leak on "
                    f"/dev/shm; if ownership transfers to another scope, "
                    f"suppress with the justification in the comment",
                )
