"""Rule framework: the context one file presents to every rule.

A rule is a small class with a ``code`` (``REPRO1xx`` family, spelled
``R1xx``), a one-line ``description``, and a ``check`` method that walks
the file's AST and yields :class:`~repro.analysis.findings.Finding`
objects.  Rules never see the filesystem — the linter hands them a
:class:`LintContext` holding the parsed tree, the module identity, and
pre-scanned import aliases, so each rule stays a pure AST visitor.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.analysis.config import AnalysisConfig, module_key
from repro.analysis.findings import Finding


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class LintContext:
    """Everything a rule may look at for one file.

    Attributes
    ----------
    path:
        The path as given to the linter (used verbatim in findings).
    module:
        The :func:`~repro.analysis.config.module_key` identity — what
        the config's seam lists match against.
    tree:
        The parsed :class:`ast.Module`.
    config:
        The active :class:`~repro.analysis.config.AnalysisConfig`.
    numpy_aliases / random_aliases:
        Names the file binds to the ``numpy`` and stdlib ``random``
        modules (``import numpy as np`` → ``{"np"}``), so rules resolve
        aliased calls without type inference.
    from_imports:
        Names imported *from* a module, mapped to their origin
        (``from numpy.random import default_rng`` →
        ``{"default_rng": "numpy.random"}``).
    """

    def __init__(self, path, tree: ast.Module, config: AnalysisConfig) -> None:
        self.path = str(path)
        self.module = module_key(path)
        self.tree = tree
        self.config = config
        self.numpy_aliases: set[str] = set()
        self.random_aliases: set[str] = set()
        self.from_imports: dict[str, str] = {}
        self._scan_imports(tree)

    def _scan_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        self.numpy_aliases.add(bound)
                    elif alias.name == "random":
                        self.random_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = node.module

    # ------------------------------------------------------------------
    # Call-name resolution helpers shared by the RNG-flavored rules
    # ------------------------------------------------------------------
    def call_target(self, call: ast.Call) -> tuple[str, str] | None:
        """Resolve a call to ``(origin_module, function_name)``.

        Handles the three spellings rules care about:

        * ``np.random.default_rng(...)`` → ``("numpy.random", "default_rng")``
          for any alias of ``numpy``;
        * ``random.seed(...)`` → ``("random", "seed")`` for any alias of
          the stdlib module;
        * ``default_rng(...)`` after ``from numpy.random import
          default_rng`` → ``("numpy.random", "default_rng")``.

        Returns ``None`` for calls that are none of these.
        """
        func = call.func
        name = dotted_name(func)
        if name is not None and "." in name:
            head, *middle, last = name.split(".")
            if head in self.numpy_aliases and middle[:1] == ["random"]:
                return "numpy.random", last
            if head in self.random_aliases and not middle:
                return "random", last
            return None
        if isinstance(func, ast.Name):
            origin = self.from_imports.get(func.id)
            if origin in ("numpy.random", "numpy", "random"):
                module = "numpy.random" if origin.startswith("numpy") else "random"
                return module, func.id
        return None

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


class Rule(ABC):
    """One determinism-contract invariant, checked syntactically."""

    #: The ``REPRO1xx`` family code, spelled ``R1xx`` in findings and
    #: suppression comments.
    code: str = ""
    #: One line for ``repro lint --list-rules`` and the docs table.
    description: str = ""

    @abstractmethod
    def check(self, context: LintContext) -> Iterator[Finding]:
        """Yield findings for one file."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.code}>"


def run_rules(
    rules: Iterable[Rule], context: LintContext
) -> list[Finding]:
    """All findings from ``rules`` over one file, unsorted."""
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(context))
    return findings
