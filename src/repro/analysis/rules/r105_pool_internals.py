"""R105 — no raw pool-buffer access outside ``pool.py``.

``RRSetPool``'s flat CSR buffers (``_members``, ``_indptr``) reallocate
on growth; a view captured elsewhere silently aliases a *retired* buffer
after the next append — the PR-2 bug class, fixed then by the
self-healing ``CSRSetView``.  Every external consumer must go through
the pool's stable API (``prefix_view``, ``first_k_sets``, ``members``,
``add_flat`` / ``add_flat_from_buffer``), which is generation-checked.
This rule fences the buffers off syntactically: any ``._members`` /
``._indptr`` attribute access outside ``pool.py`` is flagged, whatever
object it syntactically hangs on — a private name that specific appearing
outside its owner is wrong even when it is not literally a pool.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules.base import LintContext, Rule


class PoolInternalsRule(Rule):
    code = "R105"
    description = (
        "no raw RRSetPool buffer access (._members / ._indptr) outside "
        "rrset/pool.py — use prefix_view()/add_flat*()"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.config.is_pool_module(context.module):
            return
        private = context.config.pool_private_attrs
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute) and node.attr in private:
                yield context.finding(
                    node,
                    self.code,
                    f"raw pool buffer access .{node.attr} outside pool.py — "
                    f"buffers reallocate on growth (aliasing bug class); use "
                    f"prefix_view()/first_k_sets()/add_flat*() instead",
                )
