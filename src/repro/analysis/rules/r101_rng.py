"""R101 — RNG discipline.

Every RR set must be a pure function of ``(seed, ad, set_index)``
(docs/architecture.md, contract clause 1).  That only holds while *all*
generator construction and global-stream consumption goes through the
sanctioned seams: ``repro.utils.rng``, the sampler module
(:class:`~repro.rrset.sampler.StreamPlan` + the legacy streams), and the
RNG-owning backend driver.  A stray ``np.random.default_rng()`` — or a
draw from the *global* numpy/stdlib streams, whose state depends on
everything that ran before — anywhere else silently breaks
serial/process and cross-backend byte-identity.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules.base import LintContext, Rule

#: Stateful entry points of ``numpy.random``: generator construction and
#: every legacy global-stream function.  Deterministic *data* classes
#: (``SeedSequence`` with entropy, ``Philox``, ``Generator``) are not
#: listed — constructing them from an explicit seed is exactly what the
#: seams themselves do, and doing so elsewhere cannot draw from hidden
#: state.
NUMPY_RNG_CALLS = frozenset(
    {
        "default_rng",
        "RandomState",
        "seed",
        "get_state",
        "set_state",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "rand",
        "randn",
        "randint",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "bytes",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "poisson",
        "exponential",
        "beta",
        "gamma",
        "geometric",
    }
)

#: Stdlib ``random``: the ``Random`` class plus the module-level
#: functions that draw from (or reseed) the hidden global instance.
STDLIB_RNG_CALLS = frozenset(
    {
        "Random",
        "SystemRandom",
        "seed",
        "getstate",
        "setstate",
        "random",
        "randrange",
        "randint",
        "getrandbits",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
    }
)


class RngDisciplineRule(Rule):
    code = "R101"
    description = (
        "np.random.default_rng / global np.random.* / stdlib random calls "
        "only inside the sanctioned RNG seams (utils/rng.py, "
        "rrset/sampler.py, rrset/backends/base.py)"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.config.is_rng_seam(context.module):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            target = context.call_target(node)
            if target is None:
                continue
            module, name = target
            flagged = (
                name in NUMPY_RNG_CALLS
                if module == "numpy.random"
                else name in STDLIB_RNG_CALLS
            )
            if flagged:
                yield context.finding(
                    node,
                    self.code,
                    f"RNG discipline: {module}.{name} outside the sanctioned "
                    f"seams — route through repro.utils.rng (or StreamPlan) "
                    f"so the draw is addressable by (seed, ad, set_index)",
                )
