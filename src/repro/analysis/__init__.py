"""Static analysis for the determinism contract (``repro lint``).

The headline guarantee of this codebase — every RR set is a pure
function of ``(seed, ad, set_index)``, byte-identical across
serial/process, fork/spawn, pickle/shm, numpy/numba
(``docs/architecture.md``) — is enforced here as *machine-checked
policy*, not convention:

* a small AST rule framework (:mod:`repro.analysis.rules`) with
  per-rule ``REPRO1xx`` codes, ``# reprolint: disable=CODE`` inline
  suppressions (:mod:`repro.analysis.suppressions`), and a config
  declaring the sanctioned RNG seams and hot-path modules
  (:mod:`repro.analysis.config`);
* the shipped rule set: R101 RNG discipline, R102 nondeterministic seed
  sources, R103 unordered hot-path iteration, R104 shared-memory unlink
  hygiene, R105 pool-buffer encapsulation — see the "Enforced
  invariants" table in ``docs/architecture.md``;
* entry points: ``repro lint [paths]`` and ``python -m repro.analysis``
  (exit 0 clean / 1 findings / 2 usage errors).

The *runtime* half of the same posture — the determinism sanitizer that
digests sampled chunks and pinpoints the first divergent ``(ad, chunk)``
— lives with the engine in :mod:`repro.rrset.dsan`.
"""

from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig, module_key
from repro.analysis.findings import Finding, format_report
from repro.analysis.linter import (
    PARSE_ERROR_CODE,
    iter_python_files,
    lint_file,
    lint_paths,
    main,
    run,
)
from repro.analysis.rules import ALL_RULES, Rule, default_rules, rules_by_code
from repro.analysis.suppressions import is_suppressed, line_suppressions

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "DEFAULT_CONFIG",
    "Finding",
    "PARSE_ERROR_CODE",
    "Rule",
    "default_rules",
    "format_report",
    "is_suppressed",
    "iter_python_files",
    "line_suppressions",
    "lint_file",
    "lint_paths",
    "main",
    "module_key",
    "rules_by_code",
    "run",
]
