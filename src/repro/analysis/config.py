"""Linter configuration: the sanctioned seams and hot-path modules.

The rules in :mod:`repro.analysis.rules` are grounded in this repo's
determinism contract (``docs/architecture.md``), and the contract names
*where* stochastic machinery is allowed to live.  This module declares
those locations once, as data, so the rules stay mechanical:

* **RNG seams** — the only modules allowed to construct or consume
  global RNG state (``np.random.default_rng``, stdlib ``random``):
  ``utils/rng.py`` (the seed-conversion seam), ``rrset/sampler.py``
  (:class:`~repro.rrset.sampler.StreamPlan` and the legacy streams),
  and ``rrset/backends/base.py`` (the RNG-owning blocked-BFS driver).
* **Seed-source seam** — only ``utils/rng.py`` may touch nondeterministic
  entropy (entropy-less ``SeedSequence()``, ``os.urandom``, wall-clock).
  ``store/catalog.py`` is additionally sanctioned: the experiment
  catalog timestamps rows (``created_at``/``last_used_at``) — pure
  metadata that never feeds sampling, and the store's one wall-clock
  seam by declaration.
* **Hot-path modules** — where iteration order feeds selection or
  splicing (``rrset/``, ``algorithms/tirm.py``), so unordered-container
  iteration is a determinism bug, not a style nit.
* **Pool module** — the only module allowed to touch ``RRSetPool``'s
  private flat buffers (the PR-2 aliasing bug class).
* **Resource-hygiene modules** — where R104 additionally enforces
  file-handle hygiene (``store/``): the shard cache holds block files
  open across error paths if handles escape ``with`` blocks, so a bare
  ``open()`` there is a leak bug, not a style nit.

Module identity is the path suffix starting at the ``repro/`` package
root (posix separators), so the config is independent of where the
repo is checked out and works on fixture trees that mimic the layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import PurePosixPath


def module_key(path) -> str:
    """Canonical module identity for ``path``.

    The suffix starting at the last ``repro/`` component (posix form);
    for files outside a ``repro`` package, the bare filename.  Examples:
    ``src/repro/utils/rng.py`` → ``repro/utils/rng.py``;
    ``/tmp/fixture/bad_rng.py`` → ``bad_rng.py``.
    """
    parts = PurePosixPath(str(path).replace("\\", "/")).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return parts[-1] if parts else str(path)


@dataclass(frozen=True)
class AnalysisConfig:
    """Where the determinism contract sanctions stochastic machinery.

    All entries are :func:`module_key` values; ``hot_path_modules``
    entries ending in ``/`` match as directory prefixes.
    """

    #: Modules allowed to call ``np.random.default_rng`` / global
    #: ``np.random.*`` / stdlib ``random`` (rule R101).
    rng_seam_modules: frozenset[str] = frozenset(
        {
            "repro/utils/rng.py",
            "repro/rrset/sampler.py",
            "repro/rrset/backends/base.py",
        }
    )
    #: Modules allowed to touch nondeterministic seed sources (rule
    #: R102).  The experiment catalog is the store's declared wall-clock
    #: seam: row timestamps are provenance metadata, never sampling
    #: inputs.  The service job manager is sanctioned on the same
    #: argument: job ``created_at``/``finished_at`` timestamps describe
    #: the service, never feed a sampler.
    seed_source_modules: frozenset[str] = frozenset(
        {
            "repro/utils/rng.py",
            "repro/store/catalog.py",
            "repro/service/jobs.py",
        }
    )
    #: Modules where iteration order feeds selection/splicing (rule R103).
    hot_path_modules: tuple[str, ...] = (
        "repro/rrset/",
        "repro/algorithms/tirm.py",
    )
    #: Modules where R104 also enforces file-handle hygiene (bare
    #: ``open()`` outside a ``with``); entries ending in ``/`` match as
    #: directory prefixes, like ``hot_path_modules``.
    resource_hygiene_modules: tuple[str, ...] = ("repro/store/",)
    #: Modules where R104 additionally enforces network-resource
    #: hygiene: a scope that creates an asyncio server
    #: (``asyncio.start_server``) or a raw socket (``socket.socket`` /
    #: ``socket.create_server`` / ``socket.create_connection``) must
    #: reach a ``close()`` / ``wait_closed()`` on its success *and*
    #: error flows, unless the object is managed by a ``with`` block.
    #: The resident service and the distributed tier hold these
    #: resources across client/worker lifetimes, so an unclosed server
    #: or socket there is a leak bug, not a style nit.
    service_modules: tuple[str, ...] = ("repro/service/", "repro/dist/")
    #: The one module allowed to touch the pool's private buffers (R105).
    pool_module: str = "repro/rrset/pool.py"
    #: The private buffer attributes R105 guards.
    pool_private_attrs: frozenset[str] = frozenset({"_members", "_indptr"})
    #: Extra per-rule sanctioned modules, e.g. ``{"R104": {...}}`` —
    #: lets a caller widen a seam without subclassing the config.
    extra_allowed: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def _allowed(self, code: str, key: str, base: frozenset[str]) -> bool:
        extra = self.extra_allowed.get(code, ())
        return key in base or key in extra

    def is_rng_seam(self, key: str) -> bool:
        return self._allowed("R101", key, self.rng_seam_modules)

    def is_seed_source_seam(self, key: str) -> bool:
        return self._allowed("R102", key, self.seed_source_modules)

    def is_hot_path(self, key: str) -> bool:
        return any(
            key.startswith(prefix) if prefix.endswith("/") else key == prefix
            for prefix in self.hot_path_modules
        )

    def is_resource_hygiene(self, key: str) -> bool:
        return any(
            key.startswith(prefix) if prefix.endswith("/") else key == prefix
            for prefix in self.resource_hygiene_modules
        )

    def is_service(self, key: str) -> bool:
        return any(
            key.startswith(prefix) if prefix.endswith("/") else key == prefix
            for prefix in self.service_modules
        )

    def is_pool_module(self, key: str) -> bool:
        return key == self.pool_module


#: The repo's own contract, as shipped.
DEFAULT_CONFIG = AnalysisConfig()
