"""Blocking socket client for the allocation service.

One TCP connection per request — the protocol is stateless, so the
client needs no connection management, reconnection logic, or locking,
and every socket lives inside a ``with`` block (the R104 service-tier
hygiene check enforces exactly this shape).  Error payloads from the
server surface as :class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import json
import os
import socket

from repro.errors import ServiceError

#: Default per-request socket timeout (seconds) — generous because a
#: ``wait`` op legitimately blocks for a whole allocation.
DEFAULT_TIMEOUT = 600.0


def read_port_file(path: str) -> int:
    """The port a server published via ``--port-file``."""
    try:
        with open(path) as handle:
            return int(handle.read().strip())
    except (OSError, ValueError) as exc:
        raise ServiceError(f"cannot read service port from {path}: {exc}") from exc


class ServiceClient:
    """Line-delimited-JSON client for one :class:`AllocationServer`.

    Address either by ``port`` or by ``port_file`` (re-read per request,
    so a restarted server behind the same file keeps working).
    """

    def __init__(self, port: int | None = None, *, host: str = "127.0.0.1",
                 port_file: str | os.PathLike | None = None,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        if port is None and port_file is None:
            raise ServiceError("ServiceClient needs a port or a port_file")
        self.host = host
        self.port = port
        self.port_file = os.fspath(port_file) if port_file is not None else None
        self.timeout = timeout

    def _port(self) -> int:
        if self.port is not None:
            return int(self.port)
        return read_port_file(self.port_file)

    def request(self, op: str, **fields) -> dict:
        """One round-trip: send ``{"op": op, **fields}``, return the
        response payload (sans the ``ok`` flag), raise on error."""
        message = json.dumps({"op": op, **fields}).encode() + b"\n"
        try:
            with socket.create_connection(
                (self.host, self._port()), timeout=self.timeout
            ) as sock:
                sock.sendall(message)
                with sock.makefile("rb") as stream:
                    line = stream.readline()
        except OSError as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self._port()}: {exc}"
            ) from exc
        if not line:
            raise ServiceError("service closed the connection mid-request")
        response = json.loads(line)
        if not response.pop("ok", False):
            raise ServiceError(response.get("error", "service error"))
        return response

    # ------------------------------------------------------------------
    # Convenience wrappers, one per op
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def submit(self, dataset: str, *, params: dict | None = None,
               dataset_kwargs: dict | None = None) -> str:
        response = self.request(
            "submit-allocation", dataset=dataset, params=params,
            dataset_kwargs=dataset_kwargs,
        )
        return response["job_id"]

    def progress(self, job_id: str) -> dict:
        return self.request("query-progress", job_id=job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        return self.request("wait", job_id=job_id, timeout=timeout)

    def cancel(self, job_id: str, *, wait: bool = False,
               timeout: float | None = None) -> dict:
        return self.request("cancel", job_id=job_id, wait=wait, timeout=timeout)

    def reallocate(self, job_id: str, *, update_budgets: dict | None = None,
                   add_ads: list | None = None,
                   remove_ads: list | None = None) -> str:
        response = self.request(
            "reallocate", job_id=job_id, update_budgets=update_budgets,
            add_ads=add_ads, remove_ads=remove_ads,
        )
        return response["job_id"]

    def estimate_spread(self, dataset: str, *, ad: int, seeds,
                        num_sets: int = 10_000, params: dict | None = None,
                        dataset_kwargs: dict | None = None) -> dict:
        return self.request(
            "estimate-spread", dataset=dataset, ad=ad, seeds=list(seeds),
            num_sets=num_sets, params=params, dataset_kwargs=dataset_kwargs,
        )

    def list_jobs(self) -> list[dict]:
        return self.request("list-jobs")["jobs"]

    def shutdown(self) -> dict:
        return self.request("shutdown")

    def __repr__(self) -> str:
        where = (
            f"port_file={self.port_file!r}" if self.port is None
            else f"port={self.port}"
        )
        return f"ServiceClient(host={self.host!r}, {where})"
