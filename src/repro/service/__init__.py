"""Allocation-as-a-service: a resident server over warm engine pools.

The batch CLI pays the full engine lifecycle on every run — process
pool spin-up, shared-memory arena setup, backend resolution — costs
that dwarf the sampling itself once the shard cache is warm.  This
package keeps those substrates *resident*:

* :class:`~repro.service.pool.EnginePool` — warm
  :class:`~repro.rrset.sharded.ShardedSamplingEngine` instances, leased
  exclusively per run and reset (``reset_for_reuse``) between runs;
* :class:`~repro.service.jobs.JobManager` — allocation jobs as
  :class:`~repro.algorithms.session.AllocationSession` state machines
  driven in worker threads, with live progress snapshots, boundary
  cancellation, and incremental re-allocation of finished jobs;
* :class:`~repro.service.server.AllocationServer` — a stdlib-asyncio
  line-delimited-JSON server (``repro serve``) exposing the manager;
* :class:`~repro.service.client.ServiceClient` — the matching blocking
  socket client the CLI subcommands use.

Everything the service does is substrate, never contract: job
scheduling, engine leasing, and request interleaving are recorded as
provenance, but the allocation bytes are pinned by
``(seed, rng, chunk_size, sampler_mode)`` alone — a warm-pool rerun is
byte-identical to a cold batch run (equal ``dsan_root``), just cheaper.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import JobManager
from repro.service.pool import EngineLease, EnginePool
from repro.service.server import AllocationServer

__all__ = [
    "AllocationServer",
    "EngineLease",
    "EnginePool",
    "JobManager",
    "ServiceClient",
]
