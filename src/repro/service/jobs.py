"""Allocation jobs: sessions driven in worker threads over pooled engines.

A job is one :class:`~repro.algorithms.session.AllocationSession` run to
a terminal state in a daemon thread, over an engine leased from the
manager's :class:`~repro.service.pool.EnginePool` and the manager's
shared shard cache.  The worker publishes each step's progress snapshot
under the job's lock, so ``query-progress`` reads a consistent
boundary-state picture without ever touching the live session from
another thread; cancellation goes the other way through the session's
thread-safe :meth:`~repro.algorithms.session.AllocationSession.request_cancel`.

Incremental re-allocation (:meth:`JobManager.reallocate`) rebuilds the
source job's problem with budgets updated and/or ads added/removed and
submits it as a new job.  A pure budget change leaves the graph and the
per-ad probability rows — hence the pool key — untouched, so the new
job re-leases the *same warm engine*: its retained blocks serve every
previously sampled θ range and the backend is invoked only for ranges
the new instance grows beyond the old one, while the allocation stays
byte-identical to a cold batch run of the modified instance.

This module is the service's declared wall-clock seam (R102 —
``AnalysisConfig.seed_source_modules``): ``created_at``/``finished_at``
job timestamps are provenance about the service, never sampling inputs.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import replace

from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.session import TERMINAL_STATES, AllocationSession
from repro.algorithms.tirm import TIRMAllocator
from repro.errors import ServiceError
from repro.service.pool import EnginePool

#: TIRMAllocator keyword arguments a service request may set.  The
#: lifecycle knobs (checkpoint/resume) are deliberately absent — jobs
#: are resident, not checkpointed; everything else passes through.
ALLOCATOR_PARAMS = frozenset({
    "epsilon", "ell", "select_rule", "sampler_mode", "engine", "rng",
    "chunk_size", "backend", "transport", "start_method", "prefetch",
    "initial_pilot", "min_rr_sets_per_ad", "max_rr_sets_per_ad",
    "max_workers", "max_iterations", "dsan", "seed",
})

#: ``load_dataset`` keyword arguments a service request may set.
DATASET_PARAMS = frozenset({"scale", "num_ads", "attention_bound", "penalty"})


def build_allocator(params: dict | None, *, dataset: str | None,
                    coordinator=None) -> TIRMAllocator:
    """A validated TIRM config from a wire-shaped params dict.

    ``engine="dist"`` jobs run on the manager's shared coordinator — a
    client never names workers or sockets (topology is provenance, not
    contract), it just asks for the distributed substrate.
    """
    params = dict(params or {})
    unknown = sorted(set(params) - ALLOCATOR_PARAMS)
    if unknown:
        raise ServiceError(
            f"unknown allocator parameters {unknown}; allowed: "
            f"{sorted(ALLOCATOR_PARAMS)}"
        )
    params.setdefault("seed", 0)
    if params.get("engine") == "dist":
        if coordinator is None:
            raise ServiceError(
                "engine='dist' jobs need the service's coordinator; start "
                "the server with --dist-port (or build the JobManager with "
                "coordinator=...)"
            )
        params["coordinator"] = coordinator
    return TIRMAllocator(dataset=dataset, **params)


def modified_problem(
    problem: AdAllocationProblem,
    *,
    update_budgets: dict | None = None,
    add_ads: list | None = None,
    remove_ads: list | None = None,
) -> AdAllocationProblem:
    """A copy of ``problem`` with budgets updated and/or ads added or
    removed (sharing the graph and all unchanged rows).

    ``update_budgets`` maps ad index → new budget (JSON clients send
    string keys; both are accepted).  ``add_ads`` entries are dicts with
    ``name``/``budget``/``cpe`` plus ``like``, an existing ad index whose
    probability and CTP rows the new ad copies (the service never ships
    per-edge arrays over the wire).  ``remove_ads`` lists ad indices.
    """
    import numpy as np

    advertisers = list(problem.catalog)
    probs = [problem.ad_edge_probabilities(ad) for ad in range(problem.num_ads)]
    ctps = [problem.ad_ctps(ad) for ad in range(problem.num_ads)]

    for ad, budget in sorted((update_budgets or {}).items(), key=lambda kv: int(kv[0])):
        index = int(ad)
        if not 0 <= index < len(advertisers):
            raise ServiceError(f"update_budgets: no ad with index {index}")
        advertisers[index] = replace(advertisers[index], budget=float(budget))

    for spec in add_ads or ():
        try:
            like = int(spec["like"])
            name, budget, cpe = spec["name"], float(spec["budget"]), float(spec["cpe"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"add_ads entries need name/budget/cpe/like, got {spec!r}"
            ) from exc
        if not 0 <= like < problem.num_ads:
            raise ServiceError(f"add_ads: no ad with index {like} to copy")
        advertisers.append(replace(
            problem.catalog[like], name=name, budget=budget, cpe=cpe,
        ))
        probs.append(problem.ad_edge_probabilities(like))
        ctps.append(problem.ad_ctps(like))

    if remove_ads:
        drop = {int(ad) for ad in remove_ads}
        bad = sorted(d for d in drop if not 0 <= d < len(advertisers))
        if bad:
            raise ServiceError(f"remove_ads: no ads with indices {bad}")
        if len(drop) == len(advertisers):
            raise ServiceError("remove_ads would leave an empty catalog")
        advertisers = [a for i, a in enumerate(advertisers) if i not in drop]
        probs = [p for i, p in enumerate(probs) if i not in drop]
        ctps = [c for i, c in enumerate(ctps) if i not in drop]

    return AdAllocationProblem(
        problem.graph,
        AdCatalog(advertisers),
        np.stack(probs, axis=0),
        np.stack(ctps, axis=0),
        problem.attention,
        problem.penalty,
    )


class Job:
    """One allocation run and its published progress."""

    def __init__(self, job_id: str, dataset: str | None, problem, allocator,
                 *, source_job_id: str | None = None) -> None:
        self.job_id = job_id
        self.dataset = dataset
        self.problem = problem
        self.allocator = allocator
        self.source_job_id = source_job_id
        self.created_at = time.time()
        self.finished_at: float | None = None
        self.lock = threading.Lock()
        self.done = threading.Event()
        self.thread: threading.Thread | None = None
        self.session: AllocationSession | None = None
        self.snapshot: dict | None = None
        self.result = None
        self.error: BaseException | None = None
        self.engine_warm: bool | None = None
        self.cancel_requested = False

    @property
    def state(self) -> str:
        with self.lock:
            if self.error is not None:
                return "failed"
            if self.session is None:
                return "pending"
            return self.session.state

    def summary(self) -> dict:
        with self.lock:
            snapshot = self.snapshot or {}
            record = {
                "job_id": self.job_id,
                "dataset": self.dataset,
                "source_job_id": self.source_job_id,
                "created_at": self.created_at,
                "finished_at": self.finished_at,
                "engine_warm": self.engine_warm,
                "iterations": snapshot.get("iterations", 0),
                "total_seeds": snapshot.get("total_seeds", 0),
            }
            if self.error is not None:
                record["state"] = "failed"
                record["error"] = str(self.error)
            elif self.session is None:
                record["state"] = "pending"
            else:
                record["state"] = self.session.state
        return record


class JobManager:
    """Submit, observe, cancel and re-allocate jobs over one warm pool.

    ``cache`` follows the allocator's knob semantics: a directory path
    or open :class:`~repro.store.ShardCache` (owned iff opened here),
    ``None`` defers to the ``REPRO_CACHE`` environment variable.
    Finished jobs land as experiment-catalog allocation rows carrying
    their ``job_id`` when a cache is configured.

    ``coordinator`` enables ``engine="dist"`` jobs: a started (or
    startable) :class:`~repro.dist.Coordinator` is *borrowed* — the
    caller owns its lifetime — while a spec dict builds one the manager
    owns and closes.  Every distributed job shares it (and hence the
    worker fleet); ``None`` means dist jobs are refused.
    """

    def __init__(self, *, cache=None, max_idle_per_key: int = 4,
                 coordinator=None) -> None:
        from repro.store.cache import resolve_cache

        self.cache, self._cache_owned = resolve_cache(cache)
        self.coordinator = None
        self._coordinator_owned = False
        if coordinator is not None:
            from repro.dist.engine import DistributedEngine

            self.coordinator, self._coordinator_owned = (
                DistributedEngine._resolve_coordinator(coordinator)
            )
        self.pool = EnginePool(cache=self.cache, max_idle_per_key=max_idle_per_key)
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        dataset: str | None = None,
        *,
        problem=None,
        params: dict | None = None,
        dataset_kwargs: dict | None = None,
        source_job_id: str | None = None,
    ) -> Job:
        """Start one allocation job; returns immediately with the job.

        Either ``dataset`` (a registry name, loaded with
        ``dataset_kwargs``) or a ready ``problem`` must be given.
        """
        if self._closed:
            raise ServiceError("job manager is closed")
        if problem is None:
            if dataset is None:
                raise ServiceError("submit needs a dataset name or a problem")
            from repro.datasets.registry import load_dataset

            kwargs = dict(dataset_kwargs or {})
            unknown = sorted(set(kwargs) - DATASET_PARAMS)
            if unknown:
                raise ServiceError(
                    f"unknown dataset parameters {unknown}; allowed: "
                    f"{sorted(DATASET_PARAMS)}"
                )
            problem = load_dataset(dataset, **kwargs)
        allocator = build_allocator(
            params, dataset=dataset, coordinator=self.coordinator
        )
        with self._lock:
            job_id = f"job-{next(self._ids):04d}"
            job = Job(job_id, dataset, problem, allocator,
                      source_job_id=source_job_id)
            self._jobs[job_id] = job
        job.thread = threading.Thread(
            target=self._run_job, args=(job,),
            name=f"repro-{job_id}", daemon=True,
        )
        job.thread.start()
        return job

    def _run_job(self, job: Job) -> None:
        try:
            lease = self.pool.lease(job.problem, job.allocator)
            try:
                session = AllocationSession(
                    job.problem, job.allocator,
                    engine=lease.engine, cache=self.cache, job_id=job.job_id,
                )
                with job.lock:
                    job.session = session
                    job.engine_warm = lease.warm
                    if job.cancel_requested:
                        session.request_cancel()
                while session.state not in TERMINAL_STATES:
                    snapshot = session.step()
                    with job.lock:
                        job.snapshot = snapshot
                result = session.result()
                with job.lock:
                    job.result = result
            finally:
                lease.release()
        except BaseException as exc:  # published, never swallowed silently
            with job.lock:
                job.error = exc
        finally:
            job.finished_at = time.time()
            job.done.set()

    # ------------------------------------------------------------------
    # Observation / control
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job id {job_id!r}") from None

    def progress(self, job_id: str) -> dict:
        """The job summary plus the latest boundary snapshot."""
        job = self.get(job_id)
        record = job.summary()
        with job.lock:
            if job.snapshot is not None:
                record["snapshot"] = dict(job.snapshot)
        return record

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        job = self.get(job_id)
        if not job.done.wait(timeout):
            raise ServiceError(
                f"job {job_id} still running after {timeout}s"
            )
        return job

    def result(self, job_id: str):
        """The finished job's AllocationResult (raises on failed jobs)."""
        job = self.wait(job_id)
        if job.error is not None:
            raise ServiceError(
                f"job {job_id} failed: {job.error}"
            ) from job.error
        return job.result

    def cancel(self, job_id: str, *, wait: bool = False,
               timeout: float | None = None) -> Job:
        """Ask the job to stop at its next iteration boundary.  The
        truncated partial allocation becomes the job's result."""
        job = self.get(job_id)
        with job.lock:
            job.cancel_requested = True
            if job.session is not None:
                job.session.request_cancel()
        if wait:
            self.wait(job_id, timeout)
        return job

    def list_jobs(self) -> list[dict]:
        """Every job's summary, submission-ordered, with the experiment
        catalog's allocation row id attached where one was recorded."""
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.job_id)
        catalog_ids: dict[str, int] = {}
        if self.cache is not None:
            for row in self.cache.catalog.list_allocations():
                if row.get("job_id"):
                    catalog_ids[row["job_id"]] = row["id"]
        records = []
        for job in jobs:
            record = job.summary()
            record["catalog_id"] = catalog_ids.get(job.job_id)
            records.append(record)
        return records

    # ------------------------------------------------------------------
    # Incremental re-allocation
    # ------------------------------------------------------------------
    def reallocate(
        self,
        job_id: str,
        *,
        update_budgets: dict | None = None,
        add_ads: list | None = None,
        remove_ads: list | None = None,
        timeout: float | None = None,
    ) -> Job:
        """Re-run a finished job against a modified instance.

        A pure budget update keeps the graph/probability content — hence
        the engine-pool key — unchanged, so the new job re-leases the
        source job's warm engine: retained blocks serve every θ range
        the old run sampled and the backend runs only for ranges the new
        instance grows past them.  Ad additions/removals change the
        shard layout and lease cold.  Either way the result is
        byte-identical to a cold batch allocation of the modified
        instance.
        """
        if not (update_budgets or add_ads or remove_ads):
            raise ServiceError(
                "reallocate needs update_budgets, add_ads or remove_ads"
            )
        source = self.wait(job_id, timeout)
        if source.error is not None:
            raise ServiceError(
                f"cannot reallocate failed job {job_id}: {source.error}"
            ) from source.error
        problem = modified_problem(
            source.problem,
            update_budgets=update_budgets,
            add_ads=add_ads,
            remove_ads=remove_ads,
        )
        if problem.num_ads == source.problem.num_ads:
            allocator = source.allocator
        else:
            # The pool key covers per-ad content, so a changed catalog
            # leases cold anyway; a fresh config keeps the source job's
            # record pristine.
            allocator = build_allocator(
                self._allocator_params(source.allocator),
                dataset=source.dataset,
                coordinator=self.coordinator,
            )
        if self._closed:
            raise ServiceError("job manager is closed")
        # Unlike submit(), reallocation reuses the source config object
        # directly (same-shape case), so the two runs share resolved
        # backend/transport state and the pool key matches exactly.
        with self._lock:
            new_id = f"job-{next(self._ids):04d}"
            job = Job(new_id, source.dataset, problem, allocator,
                      source_job_id=job_id)
            self._jobs[new_id] = job
        job.thread = threading.Thread(
            target=self._run_job, args=(job,),
            name=f"repro-{new_id}", daemon=True,
        )
        job.thread.start()
        return job

    @staticmethod
    def _allocator_params(allocator: TIRMAllocator) -> dict:
        """The wire-shaped params dict reproducing ``allocator``."""
        return {
            "epsilon": allocator.epsilon,
            "ell": allocator.ell,
            "select_rule": allocator.select_rule,
            "sampler_mode": allocator.sampler_mode,
            "engine": allocator.engine,
            "rng": allocator.rng,
            "chunk_size": allocator.chunk_size,
            "backend": allocator.backend,
            "transport": allocator.transport,
            "start_method": allocator.start_method,
            "prefetch": allocator.prefetch,
            "initial_pilot": allocator.initial_pilot,
            "min_rr_sets_per_ad": allocator.min_rr_sets_per_ad,
            "max_rr_sets_per_ad": allocator.max_rr_sets_per_ad,
            "max_workers": allocator.max_workers,
            "max_iterations": allocator.max_iterations,
            "dsan": allocator.dsan,
            "seed": allocator._seed,
        }

    # ------------------------------------------------------------------
    # Spread estimation
    # ------------------------------------------------------------------
    def estimate_spread(
        self,
        dataset: str | None = None,
        *,
        problem=None,
        ad: int = 0,
        seeds,
        num_sets: int = 10_000,
        params: dict | None = None,
        dataset_kwargs: dict | None = None,
    ) -> dict:
        """``n · F_R(S)`` over ``num_sets`` RR-sets of one ad, sampled
        through a pooled engine (warm when the pool holds one for the
        same contract)."""
        if problem is None:
            if dataset is None:
                raise ServiceError(
                    "estimate_spread needs a dataset name or a problem"
                )
            from repro.datasets.registry import load_dataset

            problem = load_dataset(dataset, **(dataset_kwargs or {}))
        if not 0 <= int(ad) < problem.num_ads:
            raise ServiceError(f"no ad with index {ad}")
        from repro.rrset.estimator import estimate_spread_from_sets

        allocator = build_allocator(
            params, dataset=dataset, coordinator=self.coordinator
        )
        with self.pool.lease(problem, allocator) as lease:
            lease.engine.ensure({int(ad): int(num_sets)})
            spread = estimate_spread_from_sets(
                lease.engine.shard(int(ad)), problem.num_nodes, list(seeds)
            )
            warm = lease.warm
        return {
            "spread": float(spread),
            "ad": int(ad),
            "num_sets": int(num_sets),
            "engine_warm": warm,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, timeout: float | None = 30.0) -> None:
        """Cancel running jobs, join their threads, close pooled engines
        and (when owned) the shard cache."""
        with self._lock:
            self._closed = True
            jobs = list(self._jobs.values())
        for job in jobs:
            with job.lock:
                job.cancel_requested = True
                if job.session is not None:
                    job.session.request_cancel()
        for job in jobs:
            if job.thread is not None:
                job.thread.join(timeout)
        self.pool.close()
        if self._coordinator_owned and self.coordinator is not None:
            self.coordinator.close()
        if self._cache_owned and self.cache is not None:
            self.cache.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"JobManager(jobs={len(self._jobs)}, pool={self.pool!r}, "
            f"closed={self._closed})"
        )
