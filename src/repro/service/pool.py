"""Warm engine pools: lease, run, reset, repeat.

A :class:`~repro.rrset.sharded.ShardedSamplingEngine` bundles the
expensive run-independent substrates — the worker process pool, the
shared-memory payload arena, the resolved sampling backend, the shard
cache handle, and (on pooled engines) the in-memory block memo of every
RR chunk already sampled.  :class:`EnginePool` keeps finished engines
alive keyed by the inputs that pin their sample bytes, so the next
allocation of the same instance skips both the lifecycle cost *and* —
through the retained blocks — the sampling itself: a warm resubmit
performs zero sampling-backend invocations yet stays byte-identical to
a cold run.

Leases are exclusive: an engine serves one session at a time, and
:meth:`EnginePool.lease` calls
:meth:`~repro.rrset.sharded.ShardedSamplingEngine.reset_for_reuse`
before handing a warm engine out, so every session starts from the
empty-shards state the determinism contract assumes.  Pooling is
substrate, never contract — which engine a job happens to lease is
provenance, not an input to the allocation bytes.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import ServiceError
from repro.utils.hashing import array_digest, graph_digest


class EngineLease:
    """One exclusive hold on a pooled engine.

    ``warm`` records whether the engine was reused from the pool (its
    process pool, arena and retained blocks intact) or built cold for
    this lease.  Return it with :meth:`EnginePool.release` — or use the
    lease as a context manager, which releases on exit.
    """

    __slots__ = ("engine", "key", "warm", "_pool", "_released")

    def __init__(self, engine, key, warm: bool, pool: "EnginePool") -> None:
        self.engine = engine
        self.key = key
        self.warm = bool(warm)
        self._pool = pool
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._pool._return(self)

    def __enter__(self) -> "EngineLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return (
            f"EngineLease(warm={self.warm}, released={self._released}, "
            f"engine={self.engine!r})"
        )


class EnginePool:
    """Keyed free-list of warm :class:`ShardedSamplingEngine` instances.

    The key covers everything the engine constructor consumed that could
    change its samples or its recorded substrate: the problem content
    (graph digest + per-ad probability digests), the stream contract
    (seed, rng, chunk size, sampler mode) and the substrate knobs
    (engine mode, backend, transport, start method, worker count, dsan).
    Two requests with equal keys are guaranteed interchangeable engines.

    Runs seeded with a live generator object are not poolable — the
    generator was consumed while sampling and cannot be rewound — so
    those leases build cold and close on release.

    The pool shares one optional :class:`~repro.store.ShardCache`
    (injected, never closed here) with every engine it builds.
    """

    def __init__(self, *, cache=None, max_idle_per_key: int = 4) -> None:
        if max_idle_per_key < 0:
            raise ServiceError(
                f"max_idle_per_key must be >= 0, got {max_idle_per_key}"
            )
        self.cache = cache
        self.max_idle_per_key = int(max_idle_per_key)
        self._free: dict[tuple, list] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.warm_leases = 0
        self.cold_builds = 0

    # ------------------------------------------------------------------
    @staticmethod
    def lease_key(problem, allocator) -> tuple | None:
        """The pooling key for one (problem, allocator) pair, or ``None``
        when the pair is not poolable (generator-valued seed)."""
        seed = allocator._seed
        if seed is not None and not isinstance(seed, (int, np.integer)):
            return None
        return (
            allocator.dataset,
            graph_digest(problem.graph),
            tuple(
                array_digest(problem.ad_edge_probabilities(ad), label="probs")
                for ad in range(problem.num_ads)
            ),
            int(seed) if seed is not None else None,
            allocator.rng,
            allocator.chunk_size,
            allocator.sampler_mode,
            allocator.engine,
            str(allocator.backend),
            allocator.transport,
            allocator.start_method,
            allocator.max_workers,
            allocator.dsan,
        )

    def lease(self, problem, allocator) -> EngineLease:
        """An exclusive engine for one run of ``problem`` under
        ``allocator``'s knobs — warm (reset) when the pool holds a
        matching idle engine, freshly built otherwise."""
        if self._closed:
            raise ServiceError("engine pool is closed")
        key = self.lease_key(problem, allocator)
        if key is not None:
            while True:
                with self._lock:
                    idle = self._free.get(key)
                    engine = idle.pop() if idle else None
                    if idle is not None and not idle:
                        del self._free[key]
                if engine is None:
                    break
                try:
                    engine.reset_for_reuse()
                except Exception:
                    # A dead engine (closed pool, torn-down arena) is
                    # dropped, not served; keep looking, else build cold.
                    engine.close()
                    continue
                with self._lock:
                    self.warm_leases += 1
                return EngineLease(engine, key, True, self)
        engine = allocator._build_engine(
            problem, self.cache, None, retain_blocks=True
        )
        with self._lock:
            self.cold_builds += 1
        return EngineLease(engine, key, False, self)

    def _return(self, lease: EngineLease) -> None:
        with self._lock:
            pool_it = (
                not self._closed
                and lease.key is not None
                and len(self._free.get(lease.key, ())) < self.max_idle_per_key
            )
            if pool_it:
                self._free.setdefault(lease.key, []).append(lease.engine)
        if not pool_it:
            lease.engine.close()

    def release(self, lease: EngineLease) -> None:
        """Alias for :meth:`EngineLease.release` (idempotent)."""
        lease.release()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "warm_leases": self.warm_leases,
                "cold_builds": self.cold_builds,
                "idle_engines": sum(len(v) for v in self._free.values()),
                "idle_keys": len(self._free),
            }

    def close(self) -> None:
        """Close every idle engine.  Engines out on lease close when
        released (the pool refuses to re-admit them once closed)."""
        with self._lock:
            self._closed = True
            engines = [e for idle in self._free.values() for e in idle]
            self._free.clear()
        for engine in engines:
            engine.close()

    def __enter__(self) -> "EnginePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"EnginePool(idle={stats['idle_engines']}, "
            f"warm={stats['warm_leases']}, cold={stats['cold_builds']}, "
            f"closed={self._closed})"
        )
