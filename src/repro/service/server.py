"""The resident allocation server: stdlib asyncio, line-delimited JSON.

``repro serve`` runs one :class:`AllocationServer` over one
:class:`~repro.service.jobs.JobManager`.  The protocol is deliberately
primitive — one JSON object per line, one JSON object back — so any
language (or ``nc``) can drive it; the blocking ops (``submit`` loads a
dataset, ``wait`` joins a job) run in the default thread-pool executor
so the event loop keeps answering ``query-progress`` while allocations
run in the manager's worker threads.

Operations (request ``{"op": ..., ...}`` → response ``{"ok": true,
...}`` or ``{"ok": false, "error": ...}``):

``ping``                  liveness + job/pool counters
``submit-allocation``     ``dataset`` [+ ``dataset_kwargs``/``params``] → ``job_id``
``query-progress``        ``job_id`` → summary + latest boundary snapshot
``wait``                  ``job_id`` [+ ``timeout``] → full result payload
``cancel``                ``job_id`` [+ ``wait``] → stop at next boundary
``reallocate``            ``job_id`` + ``update_budgets``/``add_ads``/``remove_ads``
``estimate-spread``       ``dataset`` + ``ad`` + ``seeds`` [+ ``num_sets``]
``list-jobs``             job summaries + catalog row ids
``shutdown``              close the server after answering

Binding defaults to loopback on an ephemeral port; ``--port-file``
publishes the bound port for clients started before the server.  A
non-loopback ``--host`` is refused unless ``--allow-remote`` is given
(the protocol is unauthenticated).
"""

from __future__ import annotations

import asyncio
import json
import os

from repro.errors import ReproError, ServiceError
from repro.service.jobs import JobManager
from repro.utils.validation import check_bind_host

#: Hard cap on one request line (a seeds list at most).
MAX_REQUEST_BYTES = 8 * 1024 * 1024


def result_payload(job) -> dict:
    """The wire shape of one finished job's AllocationResult: summary,
    per-ad seed lists, revenues, and the full stats minus the bulky
    per-chunk dsan digest map (the root fingerprint suffices)."""
    record = job.summary()
    result = job.result
    if result is None:
        return record
    allocation = result.allocation
    record["algorithm"] = result.algorithm
    record["seeds_per_ad"] = [
        [int(node) for node in allocation.seed_array(ad)]
        for ad in range(len(result.estimated_revenues))
    ]
    record["estimated_revenues"] = [
        float(revenue) for revenue in result.estimated_revenues
    ]
    record["stats"] = {
        key: value for key, value in result.stats.items()
        if key != "dsan_digests"
    }
    record["provenance"] = allocation.provenance or {}
    return record


class AllocationServer:
    """One asyncio TCP server over one job manager (injected, owned by
    the caller — ``serve()`` closes it on the way out).

    The protocol is unauthenticated, so binding beyond loopback needs
    the explicit ``allow_remote=True`` opt-in (``--allow-remote``)."""

    def __init__(self, manager: JobManager, *, host: str = "127.0.0.1",
                 port: int = 0, allow_remote: bool = False) -> None:
        self.manager = manager
        self.host = check_bind_host(
            host, allow_remote=allow_remote, what="repro serve"
        )
        self.port = port
        self.bound_port: int | None = None
        self._stop: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # Dispatch (runs in the executor — may block)
    # ------------------------------------------------------------------
    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {
                "pong": True,
                "jobs": len(self.manager.list_jobs()),
                "pool": self.manager.pool.stats(),
            }
        if op == "submit-allocation":
            job = self.manager.submit(
                request.get("dataset"),
                params=request.get("params"),
                dataset_kwargs=request.get("dataset_kwargs"),
            )
            return {"job_id": job.job_id}
        if op == "query-progress":
            return self.manager.progress(request["job_id"])
        if op == "wait":
            job = self.manager.wait(
                request["job_id"], request.get("timeout")
            )
            if job.error is not None:
                raise ServiceError(
                    f"job {job.job_id} failed: {job.error}"
                )
            return result_payload(job)
        if op == "cancel":
            job = self.manager.cancel(
                request["job_id"],
                wait=bool(request.get("wait", False)),
                timeout=request.get("timeout"),
            )
            return job.summary()
        if op == "reallocate":
            job = self.manager.reallocate(
                request["job_id"],
                update_budgets=request.get("update_budgets"),
                add_ads=request.get("add_ads"),
                remove_ads=request.get("remove_ads"),
                timeout=request.get("timeout"),
            )
            return {"job_id": job.job_id, "source_job_id": job.source_job_id}
        if op == "estimate-spread":
            return self.manager.estimate_spread(
                request.get("dataset"),
                ad=int(request.get("ad", 0)),
                seeds=request.get("seeds", ()),
                num_sets=int(request.get("num_sets", 10_000)),
                params=request.get("params"),
                dataset_kwargs=request.get("dataset_kwargs"),
            )
        if op == "list-jobs":
            return {"jobs": self.manager.list_jobs()}
        if op == "shutdown":
            return {"stopping": True}
        raise ServiceError(f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line.strip():
                    break
                request = {}
                try:
                    parsed = json.loads(line)
                    if not isinstance(parsed, dict):
                        raise ServiceError("request must be a JSON object")
                    request = parsed
                    payload = await loop.run_in_executor(
                        None, self.dispatch, request
                    )
                    response = {"ok": True, **payload}
                except (ReproError, ValueError, KeyError, TypeError) as exc:
                    response = {"ok": False, "error": str(exc) or repr(exc)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if request.get("op") == "shutdown" and response.get("ok"):
                    self._stop.set()
                    break
        finally:
            writer.close()
            # wait_closed() pairs every accepted connection's transport
            # with a reachable close on all paths (R104, service tier).
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def serve_async(self, *, port_file: str | None = None,
                          ready: "asyncio.Event | None" = None) -> None:
        """Bind, publish the port, and serve until a ``shutdown`` op."""
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_REQUEST_BYTES
        )
        try:
            self.bound_port = server.sockets[0].getsockname()[1]
            if port_file is not None:
                tmp = f"{port_file}.tmp"
                with open(tmp, "w") as handle:
                    handle.write(str(self.bound_port))
                os.replace(tmp, port_file)
            print(f"repro service listening on {self.host}:{self.bound_port}",
                  flush=True)
            if ready is not None:
                ready.set()
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()

    def serve(self, *, port_file: str | None = None) -> None:
        """Blocking entry point (``repro serve``): run the loop, then
        tear the manager down — pooled engines close here, so a clean
        shutdown leaves no worker processes or /dev/shm segments."""
        try:
            asyncio.run(self.serve_async(port_file=port_file))
        except KeyboardInterrupt:
            pass
        finally:
            self.manager.close()
            if port_file is not None and os.path.exists(port_file):
                os.remove(port_file)
