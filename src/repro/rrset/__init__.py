"""Reverse-reachable-set machinery (§5.1–5.2).

* :mod:`repro.rrset.sampler` — random RR-sets (reverse BFS with lazy edge
  coins) for a fixed ad's Eq.-(1) probabilities;
* :mod:`repro.rrset.rrc` — RRC-sets: RR-sets with the extra per-node CTP
  coin flips of §5.2;
* :mod:`repro.rrset.pool` — the flat CSR storage engine: contiguous
  int32 member buffers, a bulk-built inverted index, and vectorized
  coverage/removal kernels (see ``docs/rrset_engine.md``);
* :mod:`repro.rrset.collection` — a coverage index over sampled sets with
  the lazy-deletion bookkeeping TIRM needs (now a thin alias of the
  pool);
* :mod:`repro.rrset.sharded` — the per-advertiser sharded sampling
  engine: one pool shard per ad, with serial or process-pool batched
  sampling (both bit-identical for the same seed);
* :mod:`repro.rrset.tim` — the TIM ingredients: ``L(s, ε)`` (Eq. 5), OPT
  lower-bound estimation, greedy max-cover, and a standalone TIM
  influence maximizer;
* :mod:`repro.rrset.estimator` — spread estimation ``n · F_R(S)``
  (Proposition 1 / Lemma 2).
"""

from repro.rrset.collection import RRSetCollection
from repro.rrset.estimator import RRSetSpreadOracle, estimate_spread_from_sets
from repro.rrset.pool import CSRSetView, RRSetPool
from repro.rrset.rrc import sample_rrc_set, sample_rrc_sets, sample_rrc_sets_into
from repro.rrset.sampler import RRSetSampler, sample_rr_set, sample_rr_sets
from repro.rrset.sharded import ShardedSamplingEngine
from repro.rrset.tim import (
    TIMInfluenceMaximizer,
    greedy_max_coverage,
    log_binomial,
    required_rr_sets,
)

__all__ = [
    "sample_rr_set",
    "sample_rr_sets",
    "RRSetSampler",
    "sample_rrc_set",
    "sample_rrc_sets",
    "sample_rrc_sets_into",
    "RRSetCollection",
    "RRSetPool",
    "CSRSetView",
    "ShardedSamplingEngine",
    "estimate_spread_from_sets",
    "RRSetSpreadOracle",
    "required_rr_sets",
    "log_binomial",
    "greedy_max_coverage",
    "TIMInfluenceMaximizer",
]
