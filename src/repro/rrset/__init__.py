"""Reverse-reachable-set machinery (§5.1–5.2).

* :mod:`repro.rrset.sampler` — random RR-sets (reverse BFS with lazy edge
  coins) for a fixed ad's Eq.-(1) probabilities;
* :mod:`repro.rrset.backends` — pluggable blocked-BFS backends behind
  one shared RNG-owning driver: ``numpy`` (reference), ``numba`` (JIT
  kernel, optional extra), ``auto`` — byte-identical by construction,
  selected via ``backend=`` on the sampler/engine/allocator or the CLI
  ``--backend``;
* :mod:`repro.rrset.rrc` — RRC-sets: RR-sets with the extra per-node CTP
  coin flips of §5.2;
* :mod:`repro.rrset.pool` — the flat CSR storage engine: contiguous
  int32 member buffers, a bulk-built inverted index, and vectorized
  coverage/removal kernels (see ``docs/rrset_engine.md``);
* :mod:`repro.rrset.collection` — deprecated alias of the pool (kept for
  the historical name; importing it warns);
* :mod:`repro.rrset.sharded` — the per-advertiser sharded sampling
  engine: one pool shard per ad, requests decomposed into counter-based
  ``(ad, chunk)`` stream tasks served serially or over a process pool
  (byte-identical for the same ``(seed, chunk_size)``, any worker
  count);
* :mod:`repro.rrset.dsan` — the runtime determinism sanitizer: blake2
  digests per ``(ad, chunk)`` block spliced by the sharded engine
  (``dsan=True`` / ``REPRO_DSAN=1``), with
  :func:`~repro.rrset.dsan.compare_digests` raising
  :class:`~repro.errors.DeterminismError` at the first divergent chunk;
* :mod:`repro.rrset.checkpoint` — crash-safe checkpoint/resume for
  in-flight TIRM allocations: a small versioned artifact that re-derives
  RR members from the counter-based streams on load (legacy streams
  spill members to an mmap-backed sidecar);
* :mod:`repro.rrset.tim` — the TIM ingredients: ``L(s, ε)`` (Eq. 5), OPT
  lower-bound estimation, greedy max-cover, and a standalone TIM
  influence maximizer;
* :mod:`repro.rrset.estimator` — spread estimation ``n · F_R(S)``
  (Proposition 1 / Lemma 2).
"""

from repro.rrset.backends import (
    BACKEND_MODES,
    NumbaBackend,
    NumpyBackend,
    SamplingBackend,
    available_backends,
    numba_available,
    resolve_backend,
)
from repro.rrset.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    TIRMCheckpoint,
    save_checkpoint,
)
from repro.rrset.dsan import DsanRecorder, compare_digests, dsan_enabled
from repro.rrset.estimator import RRSetSpreadOracle, estimate_spread_from_sets
from repro.rrset.pool import CSRSetView, RRSetPool
from repro.rrset.rrc import sample_rrc_set, sample_rrc_sets, sample_rrc_sets_into
from repro.rrset.sampler import (
    RRSetSampler,
    StreamPlan,
    sample_rr_set,
    sample_rr_sets,
)
from repro.rrset.sharded import ShardedSamplingEngine
from repro.rrset.tim import (
    TIMInfluenceMaximizer,
    greedy_max_coverage,
    log_binomial,
    required_rr_sets,
)

def __getattr__(name: str):
    # Lazy alias: importing the deprecated collection module eagerly
    # would warn every ``repro.rrset`` user; resolving it on first
    # attribute access warns only actual RRSetCollection importers.
    if name == "RRSetCollection":
        from repro.rrset.collection import RRSetCollection

        return RRSetCollection
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "sample_rr_set",
    "sample_rr_sets",
    "RRSetSampler",
    "StreamPlan",
    "SamplingBackend",
    "NumpyBackend",
    "NumbaBackend",
    "BACKEND_MODES",
    "available_backends",
    "numba_available",
    "resolve_backend",
    "sample_rrc_set",
    "sample_rrc_sets",
    "sample_rrc_sets_into",
    "RRSetCollection",
    "RRSetPool",
    "CSRSetView",
    "ShardedSamplingEngine",
    "DsanRecorder",
    "compare_digests",
    "dsan_enabled",
    "TIRMCheckpoint",
    "save_checkpoint",
    "CHECKPOINT_FORMAT_VERSION",
    "estimate_spread_from_sets",
    "RRSetSpreadOracle",
    "required_rr_sets",
    "log_binomial",
    "greedy_max_coverage",
    "TIMInfluenceMaximizer",
]
