"""Spread estimation from sampled sets (Proposition 1 / Lemma 2).

For a collection ``R`` of random RR-sets, ``n · F_R(S)`` — where
``F_R(S)`` is the fraction of sets intersecting ``S`` — is an unbiased
estimator of the IC spread ``σ_ic(S)``; with RRC-sets it estimates the
IC-CTP spread ``σ_icctp(S)`` instead (Lemma 2).  The
:class:`RRSetSpreadOracle` wraps the latter as a drop-in oracle for the
Greedy allocator.
"""

from __future__ import annotations

import numpy as np

from repro.advertising.problem import AdAllocationProblem
from repro.diffusion.spread import CachingSpreadOracle
from repro.errors import EstimationError
from repro.rrset.pool import RRSetPool
from repro.rrset.rrc import sample_rrc_sets_into
from repro.rrset.sampler import sample_rr_sets
from repro.utils.rng import as_generator, spawn_generators


def coverage_fraction(sets, seeds) -> float:
    """``F_R(S)``: the fraction of ``sets`` that intersect ``seeds``.

    ``sets`` may be a list of member arrays or an :class:`RRSetPool`; the
    pool path counts intersections over *all* sampled sets (alive or
    removed) with one vectorized index query, matching the list
    semantics even for pools that have been through ``remove_covered``.
    """
    if isinstance(sets, RRSetPool):
        if not sets.num_total:
            raise EstimationError("cannot estimate coverage from zero sets")
        return sets.coverage_of_set(seeds, alive_only=False) / sets.num_total
    if not sets:
        raise EstimationError("cannot estimate coverage from zero sets")
    seed_set = set(int(v) for v in np.asarray(seeds, dtype=np.int64).ravel())
    if not seed_set:
        return 0.0
    hits = sum(1 for members in sets if any(int(v) in seed_set for v in members))
    return hits / len(sets)


def estimate_spread_from_sets(sets, num_nodes: int, seeds) -> float:
    """``n · F_R(S)`` — the Proposition-1 / Lemma-2 estimator."""
    return num_nodes * coverage_fraction(sets, seeds)


class RRSetSpreadOracle(CachingSpreadOracle):
    """Greedy-compatible oracle backed by per-ad RRC-set samples.

    RRC-sets estimate the IC-CTP spread directly (Lemma 2), so arbitrary
    seed sets can be scored without the marginal-gain trick of Theorem 5.
    The §5.2 caveat applies: with CTPs in the 1–3% range, many more
    RRC-sets than RR-sets are needed for the same accuracy — this oracle
    is intended for the AB1 ablation and moderate-scale Greedy runs, not
    as a TIRM replacement.
    """

    def __init__(
        self,
        problem: AdAllocationProblem,
        *,
        sets_per_ad: int = 20_000,
        use_ctps: bool = True,
        seed=None,
    ) -> None:
        super().__init__(problem)
        if sets_per_ad < 1:
            raise ValueError("sets_per_ad must be >= 1")
        self.sets_per_ad = int(sets_per_ad)
        self.use_ctps = bool(use_ctps)
        rngs = spawn_generators(as_generator(seed), problem.num_ads)
        self._sets: list[RRSetPool] = []
        for ad in range(problem.num_ads):
            probs = problem.ad_edge_probabilities(ad)
            pool = RRSetPool(problem.num_nodes)
            if use_ctps:
                sample_rrc_sets_into(
                    problem.graph, probs, problem.ad_ctps(ad), self.sets_per_ad,
                    pool, rng=rngs[ad],
                )
            else:
                pool.add_sets(
                    sample_rr_sets(problem.graph, probs, self.sets_per_ad, rng=rngs[ad])
                )
            self._sets.append(pool)

    def _compute(self, ad: int, seeds: frozenset[int]) -> float:
        if not seeds:
            return 0.0
        return estimate_spread_from_sets(
            self._sets[ad], self.problem.num_nodes, np.fromiter(seeds, dtype=np.int64)
        )
