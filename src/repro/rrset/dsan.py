"""DSan — the runtime determinism sanitizer.

The static linter (:mod:`repro.analysis`) keeps nondeterminism *out of
the source*; DSan checks the contract *at runtime*: while the sharded
engine samples, a :class:`DsanRecorder` keeps a blake2 running digest
per ``(ad, chunk)`` over the bytes each chunk contributes to the pool —
the packed ``(lengths, members)`` block, which is itself a deterministic
function of every RNG draw the chunk consumed.  Two runs the contract
requires to be byte-identical (serial vs process, pickle vs shm,
numpy vs numba, prefetch on vs off) must therefore produce *equal digest
maps*; when they do not, :func:`compare_digests` (or an ``expected=``
recorder checking inline) raises
:class:`~repro.errors.DeterminismError` naming the **first divergent
chunk** — turning a whole-pool equality failure into a pinpoint
diagnostic of one stream address.

Enablement: ``ShardedSamplingEngine(dsan=True)`` /
``TIRMAllocator(dsan=True)`` / CLI ``--dsan``, or the ``REPRO_DSAN=1``
environment variable (consulted when the knob is left at ``None``).
Recording never draws from any stream, so a sanitized run is
byte-identical to an unsanitized one — the digests are pure observation.

Chunk keys: under ``rng="philox"`` the key is the stream address
``(ad, chunk_index)`` and digests are comparable across *any* execution
plan reaching the same targets.  Under ``rng="legacy"`` streams are
sequential and requests serve serially, so the key's second component is
the per-ad request ordinal — digests then only compare across runs with
the same request sequence (documented in ``docs/rrset_engine.md``).
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

from repro.errors import DeterminismError

#: blake2b digest width (bytes): 16 is plenty for corruption detection
#: and keeps digest maps cheap to store in stats/provenance.
DIGEST_SIZE = 16

#: Environment variable consulted when the ``dsan`` knob is ``None``.
ENV_VAR = "REPRO_DSAN"

_TRUTHY = {"1", "true", "yes", "on"}


def dsan_enabled(flag: bool | None = None) -> bool:
    """Resolve a tri-state ``dsan`` knob: explicit ``True``/``False``
    wins; ``None`` defers to the ``REPRO_DSAN`` environment variable."""
    if flag is not None:
        return bool(flag)
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def digest_block(members: np.ndarray, lengths: np.ndarray) -> str:
    """The chunk digest: blake2b over the packed block's bytes.

    The layout mirrors the shm transport segment — ``int64`` lengths,
    then ``int32`` members — so the digest is transport-independent by
    construction (both transports carry exactly these bytes).
    """
    lengths = np.ascontiguousarray(lengths, dtype=np.int64)
    members = np.ascontiguousarray(members, dtype=np.int32)
    digest = hashlib.blake2b(digest_size=DIGEST_SIZE)
    digest.update(lengths.tobytes())
    digest.update(members.tobytes())
    return digest.hexdigest()


class DsanRecorder:
    """Per-engine digest ledger, keyed by ``(ad, chunk)``.

    Parameters
    ----------
    expected:
        Optional reference digest map (a prior run's :attr:`digests`).
        When given, every recorded chunk is checked inline and a
        mismatch raises immediately — the sampling call that spliced the
        divergent chunk gets the traceback, not some later consumer of
        the corrupted pool.
    label:
        Name for this run in error messages (e.g. ``"process"``).
    """

    def __init__(self, *, expected: dict | None = None, label: str = "run") -> None:
        self.digests: dict[tuple[int, int], str] = {}
        self.expected = dict(expected) if expected is not None else None
        self.label = label

    def record(self, ad: int, chunk: int, members, lengths) -> str:
        """Digest one full chunk block and check it against the ledger.

        Raises
        ------
        DeterminismError
            If this engine already recorded a *different* digest for the
            same key (a chunk recomputed differently within one run —
            an impure sampler), or if ``expected`` disagrees.
        """
        key = (int(ad), int(chunk))
        digest = digest_block(members, lengths)
        previous = self.digests.get(key)
        if previous is not None and previous != digest:
            raise DeterminismError(
                f"dsan: chunk (ad={key[0]}, chunk={key[1]}) recomputed with a "
                f"different digest within one engine ({previous} -> {digest}) "
                f"— the sampler is not a pure function of the stream address",
                ad=key[0],
                chunk=key[1],
            )
        self.digests[key] = digest
        if self.expected is not None:
            reference = self.expected.get(key)
            if reference is not None and reference != digest:
                raise DeterminismError(
                    f"dsan: first divergent chunk (ad={key[0]}, "
                    f"chunk={key[1]}): {self.label} digest {digest} != "
                    f"expected {reference}",
                    ad=key[0],
                    chunk=key[1],
                )
        return digest

    def root_digest(self) -> str:
        """One digest over the whole ledger (sorted by key): the compact
        stats/provenance fingerprint of every RR byte this engine spliced."""
        digest = hashlib.blake2b(digest_size=DIGEST_SIZE)
        for (ad, chunk), value in sorted(self.digests.items()):
            digest.update(f"{ad}:{chunk}:{value};".encode())
        return digest.hexdigest()

    def __len__(self) -> int:
        return len(self.digests)

    def __repr__(self) -> str:
        return (
            f"DsanRecorder(label={self.label!r}, chunks={len(self.digests)}, "
            f"root={self.root_digest()})"
        )


def compare_digests(
    reference: dict, other: dict, *,
    reference_label: str = "reference", other_label: str = "other",
) -> None:
    """Assert two digest maps describe byte-identical sampling runs.

    Walks the union of keys in sorted ``(ad, chunk)`` order and raises
    :class:`~repro.errors.DeterminismError` at the **first** key where
    the maps disagree — a differing digest, or a chunk recorded by only
    one run.  Returns ``None`` when the maps match exactly.
    """
    for key in sorted(set(reference) | set(other)):
        ad, chunk = key
        left, right = reference.get(key), other.get(key)
        if left == right:
            continue
        if left is None or right is None:
            missing, present = (
                (reference_label, other_label) if left is None
                else (other_label, reference_label)
            )
            raise DeterminismError(
                f"dsan: chunk (ad={ad}, chunk={chunk}) was sampled by "
                f"{present} but never by {missing} — the runs did not reach "
                f"the same targets",
                ad=ad,
                chunk=chunk,
            )
        raise DeterminismError(
            f"dsan: first divergent chunk (ad={ad}, chunk={chunk}): "
            f"{reference_label} digest {left} != {other_label} digest {right}",
            ad=ad,
            chunk=chunk,
        )
