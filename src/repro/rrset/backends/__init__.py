"""Pluggable sampling backends for the blocked RR-set sampler.

The blocked level-synchronous BFS (``docs/rrset_engine.md``) is split
into a shared *driver* that owns every RNG draw and a per-backend
*level op* that does the hot-loop work — so every backend produces
**byte-identical** samples for the same generator state, and switching
backend changes throughput only, never results:

* :class:`NumpyBackend` (``"numpy"``) — the vectorized reference
  implementation; always available;
* :class:`NumbaBackend` (``"numba"``) — the same level op as one fused
  JIT-compiled loop; requires the optional ``numba`` extra;
* ``"auto"`` — numba when importable, else NumPy with a one-time
  :class:`RuntimeWarning`.

:func:`resolve_backend` maps those names (or a ready
:class:`SamplingBackend` instance, which passes through) to a backend
object; it is the single resolution point used by
:class:`~repro.rrset.sampler.RRSetSampler`,
:class:`~repro.rrset.sharded.ShardedSamplingEngine`,
``TIRMAllocator(backend=...)`` and the CLI's ``--backend``.  This seam
is where the ROADMAP's future accelerator/distributed samplers plug in:
implement :meth:`SamplingBackend.level_op`, and the determinism
contract, the sharded engine, checkpoint/resume, and the benchmarks all
come along for free.
"""

from __future__ import annotations

import warnings

from repro.errors import ConfigurationError
from repro.rrset.backends.base import BLOCK_BATCH, SamplingBackend, drive_blocked
from repro.rrset.backends.numba_backend import NumbaBackend, numba_available
from repro.rrset.backends.numpy_backend import NumpyBackend

#: The names ``resolve_backend`` accepts (``"auto"`` resolves to one of
#: the other two; a resolved backend's ``.name`` is never ``"auto"``).
BACKEND_MODES = ("numpy", "numba", "auto")

#: One-time ``auto`` fallback warning flag (process-wide: the fallback
#: is an environment property, not a per-call event).
_WARNED_AUTO_FALLBACK = False


def available_backends() -> tuple[str, ...]:
    """Names of the backends importable in this environment."""
    return ("numpy", "numba") if numba_available() else ("numpy",)


def resolve_backend(backend="numpy") -> SamplingBackend:
    """Resolve a backend name (or pass a backend instance through).

    ``"numpy"`` and ``"numba"`` resolve strictly — requesting numba
    without the optional extra installed raises
    :class:`~repro.errors.ConfigurationError`.  ``"auto"`` prefers numba
    and degrades gracefully to NumPy, warning once per process (results
    are identical either way; only throughput differs).
    """
    if isinstance(backend, SamplingBackend):
        return backend
    if backend == "numpy":
        return NumpyBackend()
    if backend == "numba":
        return NumbaBackend()
    if backend == "auto":
        if numba_available():
            return NumbaBackend()
        global _WARNED_AUTO_FALLBACK
        if not _WARNED_AUTO_FALLBACK:
            _WARNED_AUTO_FALLBACK = True
            warnings.warn(
                "backend='auto': numba is not installed, falling back to "
                "the numpy sampling backend (identical results, lower "
                "throughput); pip install numba to enable the JIT kernel",
                RuntimeWarning,
                stacklevel=3,
            )
        return NumpyBackend()
    raise ConfigurationError(
        f"backend must be one of {BACKEND_MODES} or a SamplingBackend "
        f"instance, got {backend!r}"
    )


__all__ = [
    "BACKEND_MODES",
    "BLOCK_BATCH",
    "NumbaBackend",
    "NumpyBackend",
    "SamplingBackend",
    "available_backends",
    "drive_blocked",
    "numba_available",
    "resolve_backend",
]
