"""The NumPy reference backend — the semantics every backend must match.

This is the vectorized level op of the historical blocked sampler
(``sampler._blocked_flat`` before the backend split), extracted
verbatim: per-level fancy-indexed slot gather, one comparison
against the pre-drawn coin block, and a sort-based ``(set, node)`` dedup
(``np.unique`` + ``searchsorted`` + sorted-merge ``np.insert``).  It is
pure NumPy — always available, no optional dependencies — and serves as
the executable specification the byte-identity tests pin the JIT
backends against.
"""

from __future__ import annotations

import numpy as np

from repro.rrset.backends.base import SamplingBackend

_EMPTY = np.empty(0, dtype=np.int64)


class NumpyBackend(SamplingBackend):
    """Vectorized NumPy level op (the reference implementation)."""

    name = "numpy"

    def level_op(self, owners, starts, degrees, in_sources, in_probs,
                 coins, visited_keys, n):
        total = coins.size
        ends = np.cumsum(degrees)
        slots = (
            np.repeat(starts - (ends - degrees), degrees)
            + np.arange(total, dtype=np.int64)
        )
        edge_owner = np.repeat(owners, degrees)
        live = coins < in_probs[slots]
        src = in_sources[slots[live]]
        own = edge_owner[live]
        if src.size == 0:
            return _EMPTY, _EMPTY, visited_keys
        # Dedup (set, node) pairs reached on this level, then drop
        # those already visited in their set.
        key = own * n + src
        ukey, first = np.unique(key, return_index=True)
        pos = np.searchsorted(visited_keys, ukey)
        pos_clipped = np.minimum(pos, visited_keys.size - 1)
        fresh = visited_keys[pos_clipped] != ukey
        if not fresh.any():
            return _EMPTY, _EMPTY, visited_keys
        first = first[fresh]
        own, src = own[first], src[first]
        # Sorted merge: both sides are sorted and `pos` already holds
        # the insertion points, so this is O(V), no re-sort.
        visited_keys = np.insert(visited_keys, pos[fresh], ukey[fresh])
        return own, src, visited_keys
