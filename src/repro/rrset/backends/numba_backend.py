"""The Numba JIT backend: the level op as one fused compiled loop.

The NumPy reference level op materializes several ``O(total-edges)``
temporaries per BFS level (slot gather, owner repeat, live mask, key
array) and re-sorts the candidate keys with ``np.unique``.  The kernel
below fuses all of that into a single pass over the frontier's in-edge
slots — no temporaries beyond the candidate/fresh buffers — followed by
one sort of only the *live* candidates and a linear two-pointer merge
into the visited-key array (both sides already sorted).

**Byte-identity.**  The kernel consumes the coin block the shared driver
pre-drew (:func:`repro.rrset.backends.base.drive_blocked` owns every RNG
call), and its dedup produces exactly the reference semantics: the fresh
pairs in ascending ``owner * n + node`` key order, merged into the
sorted visited keys.  Output is therefore byte-identical to
:class:`~repro.rrset.backends.numpy_backend.NumpyBackend` for the same
``(seed, ad, chunk)`` — pinned by ``tests/rrset/test_backends.py``,
which runs the *same function uncompiled* when numba is not installed.

``numba`` is an optional extra (``pip install -e '.[numba]'``); this
module imports it lazily, on first kernel use, so merely importing the
package never requires it.  The first compiled call pays a one-time JIT
cost (a few seconds); :meth:`NumbaBackend.warmup` fronts it explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rrset.backends.base import SamplingBackend


def _level_kernel(owners, starts, degrees, in_sources, in_probs, coins,
                  visited_keys, n):
    """One BFS level as a nopython-compatible loop.

    Written in the numba subset of Python/NumPy but runnable uncompiled:
    the byte-identity suite executes this exact function in pure Python
    when numba is absent, so the kernel's *logic* is always under test
    even where the JIT is not installed.
    """
    # Pass 1: fused slot walk + coin test → live candidate keys, in
    # edge order (frontier order, then CSR slot order — the coin order).
    cand = np.empty(coins.size, np.int64)
    c = 0
    pos = 0
    for i in range(owners.size):
        base = owners[i] * n
        start = starts[i]
        for off in range(degrees[i]):
            if coins[pos] < in_probs[start + off]:
                cand[c] = base + in_sources[start + off]
                c += 1
            pos += 1
    empty = np.empty(0, np.int64)
    if c == 0:
        return empty, empty, visited_keys
    live = np.sort(cand[:c])
    # Pass 2: dedup + freshness in one linear sweep.  `live` is sorted,
    # `visited_keys` is sorted — the visited pointer only ever advances.
    fresh = np.empty(c, np.int64)
    f = 0
    v = 0
    nv = visited_keys.size
    prev = np.int64(-1)
    for i in range(c):
        key = live[i]
        if key == prev:
            continue
        prev = key
        while v < nv and visited_keys[v] < key:
            v += 1
        if v < nv and visited_keys[v] == key:
            continue
        fresh[f] = key
        f += 1
    if f == 0:
        return empty, empty, visited_keys
    # Pass 3: two-pointer merge of the (disjoint, sorted) fresh keys
    # into the visited keys, and the key → (owner, node) split.
    merged = np.empty(nv + f, np.int64)
    i = 0
    j = 0
    m = 0
    while i < nv and j < f:
        if visited_keys[i] < fresh[j]:
            merged[m] = visited_keys[i]
            i += 1
        else:
            merged[m] = fresh[j]
            j += 1
        m += 1
    while i < nv:
        merged[m] = visited_keys[i]
        i += 1
        m += 1
    while j < f:
        merged[m] = fresh[j]
        j += 1
        m += 1
    own = np.empty(f, np.int64)
    src = np.empty(f, np.int64)
    for i in range(f):
        own[i] = fresh[i] // n
        src[i] = fresh[i] - own[i] * n
    return own, src, merged


#: Process-wide compiled-kernel cache: numba caches per-signature
#: machine code on the dispatcher, so one dispatcher is shared by every
#: NumbaBackend instance (samplers, shards, forked workers alike).
_COMPILED = None


def numba_available() -> bool:
    """Whether the optional ``numba`` package is importable."""
    if _COMPILED is not None:
        return True
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def _compiled_kernel():
    global _COMPILED
    if _COMPILED is None:
        import numba

        _COMPILED = numba.njit(cache=True, nogil=True)(_level_kernel)
    return _COMPILED


class NumbaBackend(SamplingBackend):
    """JIT-compiled level op (optional ``numba`` extra).

    Parameters
    ----------
    jit:
        ``True`` (default) compiles :func:`_level_kernel` with
        ``numba.njit`` — constructing the backend raises
        :class:`~repro.errors.ConfigurationError` when numba is not
        installed (``backend="auto"`` degrades to NumPy instead of
        raising).  ``False`` runs the identical kernel uncompiled: a
        test-only escape hatch that lets the byte-identity suite verify
        the kernel's logic on machines without numba.  Both settings
        produce identical output.
    """

    name = "numba"

    def __init__(self, *, jit: bool = True) -> None:
        if jit and not numba_available():
            raise ConfigurationError(
                "backend 'numba' requires the optional numba package "
                "(pip install numba); use backend='numpy', or "
                "backend='auto' to fall back automatically"
            )
        self._jit = jit
        self._kernel = None

    def _resolve_kernel(self):
        if self._kernel is None:
            self._kernel = _compiled_kernel() if self._jit else _level_kernel
        return self._kernel

    def warmup(self, graph) -> None:
        """Compile the kernel now (one tiny level on real dtypes).

        The first JIT call costs seconds; benchmarks and latency-
        sensitive callers invoke this outside their timed regions.
        Compilation is cached process-wide (and on disk via
        ``njit(cache=True)``), so warmup is a no-op after the first
        backend to run in a process.
        """
        kernel = self._resolve_kernel()
        owners = np.zeros(1, dtype=np.int64)
        starts = np.asarray(graph.in_indptr[:1], dtype=graph.in_indptr.dtype)
        degrees = np.zeros(1, dtype=np.int64)
        kernel(
            owners, starts, degrees, graph.in_sources,
            np.zeros(1, dtype=np.float64), np.empty(0, dtype=np.float64),
            owners.copy(), max(graph.num_nodes, 1),
        )

    def level_op(self, owners, starts, degrees, in_sources, in_probs,
                 coins, visited_keys, n):
        return self._resolve_kernel()(
            owners, starts, degrees, in_sources, in_probs, coins,
            visited_keys, n,
        )
