"""The sampling-backend seam of the blocked RR-set sampler.

The level-synchronous blocked BFS has two separable halves:

* the **driver** (:func:`drive_blocked`) — batching, root draws, the
  per-level coin draws, and the final pack into a ``(members, lengths)``
  block.  The driver owns *every* RNG call, in a fixed order: one
  ``Generator.integers`` per batch for the roots, then exactly one
  ``Generator.random(total)`` per BFS level.  It is shared by all
  backends;
* the **level op** — given one level's frontier and its pre-drawn coin
  block, decide which edges are live, dedup the newly reached
  ``(set, node)`` pairs, and merge them into the sorted visited-key
  array.  This is the hot loop, and the only part a backend implements.

Because the driver is shared and draws all randomness itself, two
backends given the same generator state consume the identical coin
sequence and therefore produce **byte-identical** output — the
determinism contract (``docs/rrset_engine.md``) is backend-invariant by
construction, not by careful reimplementation.  A backend's level op
must be a pure function of its inputs (no RNG, no state) that preserves
the reference semantics pinned by ``tests/rrset/test_backends.py``.

The level-op contract
---------------------

``level_op(owners, starts, degrees, in_sources, in_probs, coins,
visited_keys, n) -> (new_owners, new_sources, new_visited_keys)``

* ``owners[i]``/``starts[i]``/``degrees[i]`` — set id owning frontier
  entry ``i`` and its in-CSR slot range ``[starts[i], starts[i] +
  degrees[i])``;
* ``coins`` — one uniform draw per examined in-edge, in frontier order
  then CSR slot order (``coins.size == degrees.sum()``);
* ``visited_keys`` — sorted, unique ``owner * n + node`` keys of every
  pair already reached in this batch;
* returns the *fresh* pairs in ascending key order plus the merged
  (still sorted, unique) visited keys.  An edge is live iff
  ``coins[k] < in_probs[slot]``; a pair is fresh iff its key is not in
  ``visited_keys``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.rrset.pool import MEMBER_DTYPE

#: RNG-block width of the level-synchronous batched BFS (one batch of
#: roots BFS-ed together; part of neither the stream nor the backend
#: contract — any batch size yields the same sets for the same rng).
BLOCK_BATCH = 4_096


class SamplingBackend(ABC):
    """One implementation of the blocked-BFS level op.

    Backends are interchangeable plug-ins behind
    :class:`~repro.rrset.sampler.RRSetSampler`,
    :class:`~repro.rrset.sharded.ShardedSamplingEngine` and
    ``TIRMAllocator(backend=...)``: all of them produce byte-identical
    samples for the same generator state (see the module docstring), so
    switching backend never changes results — only throughput.
    """

    #: Stable identifier recorded in stats, provenance, and checkpoint
    #: configs.  Because output is backend-invariant, the name is *not*
    #: part of the determinism contract — a checkpoint written under one
    #: backend resumes byte-identically under another.
    name: str = "abstract"

    @abstractmethod
    def level_op(self, owners, starts, degrees, in_sources, in_probs,
                 coins, visited_keys, n):
        """Advance one BFS level (see the module docstring contract)."""

    def warmup(self, graph) -> None:
        """Pay any one-time setup cost (e.g. JIT compilation) up front.

        Called with the target graph so compiled backends can specialize
        on the real array dtypes.  The base implementation is a no-op.
        """

    def sample_flat(
        self,
        graph,
        in_probs: np.ndarray,
        rng: np.random.Generator,
        count: int,
        batch_size: int | None = None,
        roots: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``count`` RR-sets as a packed ``(members, lengths)`` block,
        drawing from ``rng`` — the backend-facing entry point the
        sampler calls."""
        return drive_blocked(
            graph, in_probs, rng, count, self.level_op, batch_size, roots
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _empty_flat() -> tuple[np.ndarray, np.ndarray]:
    return np.empty(0, dtype=MEMBER_DTYPE), np.empty(0, dtype=np.int64)


def drive_blocked(
    graph,
    in_probs: np.ndarray,
    rng: np.random.Generator,
    count: int,
    level_op,
    batch_size: int | None = None,
    roots: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Shared blocked-BFS driver: ``count`` RR-sets as a packed
    ``(members, lengths)`` block, drawing from ``rng``.

    Runs a reverse BFS over a whole batch of roots at once: each level
    gathers the in-edge slot ranges of *every* frontier node across the
    batch, draws all their coins in one ``Generator.random`` block, and
    hands frontier + coins to ``level_op`` for the live-edge test and
    the ``(set, node)`` dedup.  ``in_probs`` is the per-in-slot
    probability array (canonical edge probabilities gathered through
    ``graph.in_edge_ids``).  ``roots`` fixes the roots (tests and the
    single-set helper); by default they are drawn from ``rng``.

    The RNG call sequence is fixed here, independent of ``level_op``:
    that is what makes every backend byte-identical for the same
    generator state.
    """
    n = graph.num_nodes
    if count == 0:
        return _empty_flat()
    if n == 0:
        raise ValueError("cannot sample RR-sets from an empty graph")
    if batch_size is None:
        batch_size = BLOCK_BATCH
    in_indptr = graph.in_indptr
    in_sources = graph.in_sources
    member_chunks: list[np.ndarray] = []
    length_chunks: list[np.ndarray] = []
    done = 0
    while done < count:
        batch = min(batch_size, count - done)
        if roots is None:
            batch_roots = rng.integers(0, n, size=batch)
        else:
            batch_roots = np.asarray(roots[done : done + batch], dtype=np.int64)
        owners = np.arange(batch, dtype=np.int64)
        # Visited (set, node) pairs as a sorted key array: memory and
        # work scale with the members actually discovered, never with
        # batch × num_nodes.  Owners are distinct here, so the root
        # keys are already unique and sorted.
        visited_keys = owners * n + batch_roots
        frontier = batch_roots.astype(np.int64)
        pair_owner = [owners]
        pair_node = [frontier]
        while frontier.size:
            starts = in_indptr[frontier]
            degrees = in_indptr[frontier + 1] - starts
            total = int(degrees.sum())
            if total == 0:
                break
            coins = rng.random(total)
            own, src, visited_keys = level_op(
                owners, starts, degrees, in_sources, in_probs, coins,
                visited_keys, n,
            )
            if src.size == 0:
                break
            pair_owner.append(own)
            pair_node.append(src)
            owners, frontier = own, src
        all_owner = np.concatenate(pair_owner)
        all_node = np.concatenate(pair_node)
        order = np.argsort(all_owner, kind="stable")
        member_chunks.append(all_node[order].astype(MEMBER_DTYPE))
        length_chunks.append(np.bincount(all_owner, minlength=batch))
        done += batch
    return np.concatenate(member_chunks), np.concatenate(length_chunks)
