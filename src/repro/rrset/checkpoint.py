"""Crash-safe checkpoint/resume for in-flight TIRM allocations.

A long allocation on an LJ-scale graph can run for hours revising each
ad's sample size ``θ_i`` (Algorithms 2–4); losing all of it to a crash
or preemption is what this module prevents.  A checkpoint is a *small*,
versioned artifact snapshotted at iteration boundaries: it records the
RNG provenance (master ``seed``, ``rng`` mode, ``chunk_size``, per-ad
stream entropies), the per-ad ``θ_i`` targets, the chosen seeds in
selection order, the marginal-coverage/revenue state, and the per-shard
alive masks — and, crucially, **no RR-set members** under the default
``rng="philox"`` streams.

Why no members?  Counter-based addressing makes every RR set a pure
function of ``(seed, ad, set_index)`` (see
:class:`~repro.rrset.sampler.StreamPlan`), so
:meth:`~repro.rrset.sharded.ShardedSamplingEngine.ensure` re-derives the
exact shard contents byte-identically on load — the checkpoint only
needs to name the targets.  Heaps are likewise *derived* state: the lazy
selector's answers are pure functions of the coverage counters, so the
restore path rebuilds them instead of persisting them.

Legacy streams (``rng="legacy"``) are stateful and sequential, so their
sets cannot be re-derived from an address.  For them the artifact spills
the raw members to an ``.npy`` sidecar written with
:func:`numpy.save` and re-loaded with ``mmap_mode="r"`` — the members
page in lazily during restore, which doubles as the engine's cold-set
path for samples larger than RAM — and captures both per-ad stream
states (Mersenne scalar + PCG64 blocked) so post-resume top-ups continue
bit-identically.

The compatibility config also records the *resolved* sampling
``backend`` (``repro.rrset.backends``) and worker ``transport``
(``repro.rrset.sharded``) as provenance, but deliberately does **not**
match on either at resume time: backends and transports are
byte-identical for the same streams, so a checkpoint written under the
numpy backend over the pickle transport resumes under the numba backend
over the shm transport (and vice versa) with an unchanged allocation —
only the RNG contract (``rng``, ``chunk_size``, seed, stream entropies)
pins the samples.

Artifact layout (``format_version`` 1)
--------------------------------------

One uncompressed ``.npz`` written atomically (temp file + ``os.replace``):

* ``meta_json`` — version, the allocator/problem compatibility config,
  iteration count, resume lineage, per-ad stream entropies (philox) or
  stream states (legacy), and the spill sidecar name (legacy);
* ``theta`` / ``revenue`` / ``seed_size_estimate`` / ``active`` — per-ad
  vectors;
* ``seeds_{i}`` — ad ``i``'s chosen seeds in selection order;
* ``marginal_nodes_{i}`` / ``marginal_counts_{i}`` — the Algorithm-4
  marginal-coverage map in insertion order (the order matters: revenue
  re-estimation sums floats in it);
* ``alive_{i}`` — the shard's alive mask, bit-packed;
* ``spill_lengths_{i}`` — per-set member counts (legacy only; the flat
  members live in the sidecar ``<artifact>.members-<iteration>.npy``).

The sidecar is written *before* the main artifact is swapped in and
stale sidecars are removed only afterwards, so a crash at any point
leaves a readable ``(artifact, sidecar)`` pair on disk.
"""

from __future__ import annotations

import glob
import json
import os
import zipfile

import numpy as np
import numpy.lib.format as _npy_format

from repro.errors import CheckpointError, ConfigurationError
from repro.rrset.sharded import ShardedSamplingEngine

#: Bump on any incompatible artifact change; loaders refuse unknown
#: versions instead of guessing.
CHECKPOINT_FORMAT_VERSION = 1

#: Config keys that must match exactly between the checkpointed run and
#: the resuming allocator/problem — any drift would silently change the
#: allocation the resumed run converges to.  ``backend`` and
#: ``transport`` are stored but intentionally absent here: both are
#: byte-identical substrates, so cross-backend and cross-transport
#: resume is sound (and pinned by tests).
_MATCH_KEYS = (
    "algorithm",
    "rng",
    "sampler_mode",
    "select_rule",
    "epsilon",
    "ell",
    "initial_pilot",
    "min_rr_sets_per_ad",
    "max_rr_sets_per_ad",
    "num_ads",
    "num_nodes",
    "num_edges",
)


def _spill_name(path: str, iterations: int) -> str:
    return f"{os.path.basename(path)}.members-{iterations}.npy"


def _atomic_write(target: str, writer) -> None:
    """Write via ``writer(open file)`` to a temp sibling, then rename."""
    tmp = f"{target}.tmp"
    try:
        with open(tmp, "wb") as handle:
            writer(handle)
        os.replace(tmp, target)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def _write_spill(handle, parts: list[np.ndarray], total: int) -> None:
    """Stream the per-shard member arrays into one flat ``.npy``: header
    first, then each block — the full sample is never materialized as a
    single in-RAM copy (the sidecar exists precisely for >RAM θ)."""
    _npy_format.write_array_header_1_0(
        handle,
        {
            "descr": _npy_format.dtype_to_descr(np.dtype(np.int32)),
            "fortran_order": False,
            "shape": (int(total),),
        },
    )
    for part in parts:
        handle.write(np.ascontiguousarray(part, dtype=np.int32).tobytes())


def _reusable_spill(path: str, config: dict, theta: np.ndarray) -> str | None:
    """Sidecar of the previous snapshot at ``path``, when still valid.

    The spill is a pure function of the shard contents, and legacy
    shards only change on θ growth — which Algorithm 2 triggers on a
    small fraction of iteration boundaries.  If the previous artifact
    was written by the same run (equal config) at the same per-ad θ and
    its sidecar is intact, reference it instead of rewriting the full
    member spill every iteration."""
    if not os.path.exists(path):
        return None
    try:
        previous = TIRMCheckpoint.load(path)
    except CheckpointError:
        return None
    if previous.spill_file is None or previous.config != config:
        return None
    if not np.array_equal(np.asarray(previous.theta), np.asarray(theta)):
        return None
    sidecar = os.path.join(os.path.dirname(path) or ".", previous.spill_file)
    return previous.spill_file if os.path.exists(sidecar) else None


def build_snapshot(
    *,
    config: dict,
    engine: ShardedSamplingEngine,
    per_ad: list[dict],
    iterations: int,
    lineage: list[dict],
) -> dict:
    """The checkpoint payload as one JSON-friendly dict — no file.

    This is the single serializer behind both snapshot consumers: the
    on-disk artifact (:func:`save_checkpoint` writes exactly these
    fields, adding only the bulk alive masks / legacy member spill) and
    the live progress reports of
    :meth:`~repro.algorithms.session.AllocationSession.progress` (the
    service's ``query-progress`` answers are this dict verbatim).  One
    serializer means the two views cannot drift: a field added here
    shows up in both the artifact and the wire format.

    ``per_ad`` takes one dict per advertiser with keys ``seeds``,
    ``marginal_nodes``, ``marginal_counts``, ``revenue``,
    ``seed_size_estimate`` and ``active`` — insertion order of the
    marginal maps is preserved (revenue re-estimation sums floats in
    it).  Everything is plain ints/floats/lists, so ``json.dumps``
    round-trips the snapshot unchanged.
    """
    h = engine.num_ads
    if len(per_ad) != h:
        raise ValueError(f"got {len(per_ad)} per-ad records for {h} shards")
    snapshot: dict = {
        "format": "tirm-checkpoint",
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "config": dict(config),
        "iterations": int(iterations),
        "lineage": list(lineage),
        "theta": [int(engine.shard(ad).num_total) for ad in range(h)],
        "revenue": [float(p["revenue"]) for p in per_ad],
        "seed_size_estimate": [int(p["seed_size_estimate"]) for p in per_ad],
        "active": [bool(p["active"]) for p in per_ad],
        "seeds": [[int(v) for v in p["seeds"]] for p in per_ad],
        "marginal_nodes": [
            [int(v) for v in p["marginal_nodes"]] for p in per_ad
        ],
        "marginal_counts": [
            [int(v) for v in p["marginal_counts"]] for p in per_ad
        ],
    }
    if engine.rng == "philox":
        snapshot["entropies"] = [engine.stream_entropy(ad) for ad in range(h)]
    else:
        snapshot["entropies"] = None
        snapshot["legacy_states"] = [
            engine.sampler(ad).legacy_state() for ad in range(h)
        ]
    return snapshot


def save_checkpoint(
    path,
    *,
    config: dict,
    engine: ShardedSamplingEngine,
    per_ad: list[dict],
    iterations: int,
    lineage: list[dict],
) -> None:
    """Snapshot an in-flight allocation to ``path`` (atomic overwrite).

    ``config`` is the allocator/problem compatibility record (validated
    on resume), ``per_ad`` one dict per advertiser with keys ``seeds``,
    ``marginal_nodes``, ``marginal_counts``, ``revenue``,
    ``seed_size_estimate`` and ``active``, and ``lineage`` the list of
    resume events this run inherited (recorded into
    ``Allocation.provenance`` by the allocator).  The payload fields
    come from :func:`build_snapshot`; this function only adds the bulk
    state a live progress report omits (bit-packed alive masks and, for
    legacy streams, the member spill) and the atomic file plumbing.
    """
    path = os.fspath(path)
    h = engine.num_ads
    snapshot = build_snapshot(
        config=config,
        engine=engine,
        per_ad=per_ad,
        iterations=iterations,
        lineage=lineage,
    )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    meta: dict = {
        key: snapshot[key]
        for key in ("format", "format_version", "config", "iterations", "lineage")
    }
    arrays: dict[str, np.ndarray] = {
        "theta": np.asarray(snapshot["theta"], dtype=np.int64),
        "revenue": np.asarray(snapshot["revenue"], dtype=np.float64),
        "seed_size_estimate": np.asarray(
            snapshot["seed_size_estimate"], dtype=np.int64
        ),
        "active": np.asarray(snapshot["active"], dtype=bool),
    }
    for ad in range(h):
        arrays[f"seeds_{ad}"] = np.asarray(snapshot["seeds"][ad], dtype=np.int64)
        arrays[f"marginal_nodes_{ad}"] = np.asarray(
            snapshot["marginal_nodes"][ad], dtype=np.int64
        )
        arrays[f"marginal_counts_{ad}"] = np.asarray(
            snapshot["marginal_counts"][ad], dtype=np.int64
        )
        arrays[f"alive_{ad}"] = np.packbits(engine.shard(ad).alive_mask())
    meta["entropies"] = snapshot["entropies"]
    if engine.rng != "philox":
        meta["legacy_states"] = snapshot["legacy_states"]
        spill_parts: list[np.ndarray] = []
        for ad in range(h):
            view = engine.shard(ad).prefix_view()
            arrays[f"spill_lengths_{ad}"] = np.diff(view.indptr)
            spill_parts.append(np.asarray(view.members))
        spill = _reusable_spill(path, config, arrays["theta"])
        if spill is None:
            spill = _spill_name(path, iterations)
            total = sum(int(p.size) for p in spill_parts)
            _atomic_write(
                os.path.join(os.path.dirname(path) or ".", spill),
                lambda f: _write_spill(f, spill_parts, total),
            )
        meta["spill_file"] = spill
    arrays["meta_json"] = np.array(json.dumps(meta))
    _atomic_write(path, lambda f: np.savez(f, **arrays))
    # Only after the new artifact is in place: drop sidecars of older
    # snapshots (a crash before this point leaves both pairs readable).
    current = meta.get("spill_file")
    for stale in glob.glob(f"{path}.members-*.npy"):
        if os.path.basename(stale) != current:
            try:
                os.remove(stale)
            except OSError:
                pass


class TIRMCheckpoint:
    """A loaded checkpoint artifact (see the module docstring for the
    on-disk layout).  Use :meth:`load`, then :meth:`validate_config`
    against the resuming allocator, then :meth:`restore_engine` on a
    freshly constructed engine."""

    def __init__(self, path: str, meta: dict, arrays: dict) -> None:
        self.path = path
        self.config: dict = meta["config"]
        self.iterations: int = int(meta["iterations"])
        self.lineage: list[dict] = list(meta.get("lineage", []))
        self.entropies = meta.get("entropies")
        self.legacy_states = meta.get("legacy_states")
        self.spill_file = meta.get("spill_file")
        self.num_ads: int = int(self.config["num_ads"])
        self.theta = arrays["theta"]
        self.revenue = arrays["revenue"]
        self.seed_size_estimate = arrays["seed_size_estimate"]
        self.active = arrays["active"]
        self._arrays = arrays

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path) -> "TIRMCheckpoint":
        """Load and structurally validate a checkpoint artifact."""
        path = os.fspath(path)
        if not os.path.exists(path):
            raise CheckpointError(f"no checkpoint artifact at {path!r}")
        try:
            # BadZipFile subclasses Exception directly (not OSError), so
            # it must be named: a truncated artifact raises it.
            with np.load(path, allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise CheckpointError(
                f"could not read checkpoint artifact {path!r}: {exc}"
            ) from exc
        if "meta_json" not in arrays:
            raise CheckpointError(
                f"{path!r} is not a TIRM checkpoint (no meta_json entry)"
            )
        try:
            meta = json.loads(str(arrays["meta_json"][()]))
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"corrupt checkpoint metadata in {path!r}") from exc
        if meta.get("format") != "tirm-checkpoint":
            raise CheckpointError(f"{path!r} is not a TIRM checkpoint")
        version = meta.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format version {version!r} in {path!r} "
                f"(this build reads version {CHECKPOINT_FORMAT_VERSION})"
            )
        checkpoint = cls(path, meta, arrays)
        required = ["theta", "revenue", "seed_size_estimate", "active"]
        for ad in range(checkpoint.num_ads):
            required += [f"seeds_{ad}", f"marginal_nodes_{ad}",
                         f"marginal_counts_{ad}", f"alive_{ad}"]
        missing = [name for name in required if name not in arrays]
        if missing:
            raise CheckpointError(
                f"checkpoint {path!r} is missing entries: {missing}"
            )
        return checkpoint

    # ------------------------------------------------------------------
    # Per-ad accessors
    # ------------------------------------------------------------------
    def seeds_in_order(self, ad: int) -> list[int]:
        """Ad ``ad``'s chosen seeds in selection order."""
        return [int(v) for v in self._arrays[f"seeds_{ad}"]]

    def marginal_coverage(self, ad: int) -> dict[int, int]:
        """The Algorithm-4 marginal-coverage map, in insertion order."""
        return {
            int(node): int(count)
            for node, count in zip(
                self._arrays[f"marginal_nodes_{ad}"],
                self._arrays[f"marginal_counts_{ad}"],
            )
        }

    def alive_mask(self, ad: int) -> np.ndarray:
        """The shard's snapshotted alive mask, unpacked."""
        theta = int(self.theta[ad])
        return np.unpackbits(self._arrays[f"alive_{ad}"], count=theta).astype(bool)

    # ------------------------------------------------------------------
    # Validation and restore
    # ------------------------------------------------------------------
    def validate_config(self, config: dict) -> None:
        """Refuse to resume into an incompatible allocator/problem.

        Every key in ``_MATCH_KEYS`` must match exactly; ``chunk_size``
        must match under ``rng="philox"`` (it is part of the stream
        contract); and when both runs name an integer master ``seed``
        the seeds must agree.
        """
        mismatches = [
            f"{key}: checkpoint={self.config.get(key)!r} vs run={config.get(key)!r}"
            for key in _MATCH_KEYS
            if self.config.get(key) != config.get(key)
        ]
        if self.config.get("rng") == "philox" and self.config.get(
            "chunk_size"
        ) != config.get("chunk_size"):
            mismatches.append(
                f"chunk_size: checkpoint={self.config.get('chunk_size')!r} "
                f"vs run={config.get('chunk_size')!r}"
            )
        old_seed, new_seed = self.config.get("seed"), config.get("seed")
        if old_seed is not None and new_seed is not None and old_seed != new_seed:
            mismatches.append(f"seed: checkpoint={old_seed!r} vs run={new_seed!r}")
        if mismatches:
            raise ConfigurationError(
                "checkpoint is incompatible with this run: "
                + "; ".join(mismatches)
            )

    def restore_engine(self, engine: ShardedSamplingEngine) -> None:
        """Rebuild the snapshot's shards inside a *fresh* engine.

        Under ``rng="philox"`` the members are re-derived byte-identically
        from the counter-based streams (``engine.ensure`` to each ``θ_i``
        — nothing was persisted); under ``rng="legacy"`` they are loaded
        from the mmap-backed spill sidecar and the stream states are
        restored.  The snapshot's alive masks are then re-applied, which
        also restores the coverage counters exactly.
        """
        if engine.num_ads != self.num_ads:
            raise ConfigurationError(
                f"engine has {engine.num_ads} shards, checkpoint {self.num_ads}"
            )
        if engine.rng != self.config.get("rng"):
            raise ConfigurationError(
                f"engine rng={engine.rng!r}, checkpoint "
                f"rng={self.config.get('rng')!r}"
            )
        if engine.total_sets():
            raise CheckpointError(
                "restore_engine needs a freshly constructed engine "
                f"(found {engine.total_sets()} existing sets)"
            )
        if engine.rng == "philox":
            for ad in range(self.num_ads):
                if engine.stream_entropy(ad) != self.entropies[ad]:
                    raise ConfigurationError(
                        f"engine stream entropy for ad {ad} does not match "
                        "the checkpoint; construct the engine from the "
                        "checkpoint's entropies"
                    )
            engine.ensure(
                {ad: int(self.theta[ad]) for ad in range(self.num_ads)}
            )
        else:
            members = self._load_spill()
            offset = 0
            for ad in range(self.num_ads):
                lengths = np.asarray(
                    self._arrays[f"spill_lengths_{ad}"], dtype=np.int64
                )
                total = int(lengths.sum())
                if lengths.size:
                    engine.shard(ad).add_flat(members[offset : offset + total],
                                              lengths)
                offset += total
                engine.sampler(ad).set_legacy_state(self.legacy_states[ad])
        for ad in range(self.num_ads):
            shard = engine.shard(ad)
            theta = int(self.theta[ad])
            if shard.num_total != theta:
                raise CheckpointError(
                    f"restored shard {ad} holds {shard.num_total} sets, "
                    f"checkpoint recorded {theta}"
                )
            shard.kill_sets(np.flatnonzero(~self.alive_mask(ad)))

    def _load_spill(self) -> np.ndarray:
        if self.spill_file is None:
            raise CheckpointError(
                f"legacy checkpoint {self.path!r} names no member spill"
            )
        spill_path = os.path.join(
            os.path.dirname(self.path) or ".", self.spill_file
        )
        if not os.path.exists(spill_path):
            raise CheckpointError(
                f"member spill {spill_path!r} is missing (checkpoint "
                f"{self.path!r} is incomplete)"
            )
        # mmap: members page in lazily as add_flat copies each ad's
        # slice — the artifact's cold-set path for >RAM samples.
        try:
            return np.load(spill_path, mmap_mode="r")
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise CheckpointError(
                f"could not read member spill {spill_path!r}: {exc}"
            ) from exc

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(path={self.path!r}, "
            f"iterations={self.iterations}, rng={self.config.get('rng')!r}, "
            f"num_ads={self.num_ads})"
        )
