"""TIM ingredients (Tang et al. [25]) reused by TIRM (§5.1).

* :func:`required_rr_sets` — Eq. (5): the sample size ``L(s, ε)`` that
  makes ``n · F_R(S)`` an ``(ε/2)·OPT_s``-accurate spread estimator for
  all seed sets of size ≤ s (Proposition 2);
* :func:`estimate_opt_lower_bound` — a pilot-sample greedy estimate of a
  lower bound on ``OPT_s`` (the greedy cover's spread is achievable,
  hence a lower bound on the optimum);
* :func:`kpt_estimation` — the original KPT* estimator of TIM's phase 1,
  kept for reference and cross-checking;
* :func:`greedy_max_coverage` — the Max s-Cover greedy of TIM's phase 2;
* :class:`TIMInfluenceMaximizer` — a standalone (1 − 1/e − ε)
  influence maximizer, used by the AB2 ablation and as a public API for
  classic influence maximization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError
from repro.graph.digraph import DirectedGraph
from repro.rrset.pool import CSRSetView, RRSetPool
from repro.rrset.sampler import RRSetSampler
from repro.utils.rng import as_generator


def log_binomial(n: int, k: int) -> float:
    """``log C(n, k)`` via lgamma (exact enough for Eq. 5)."""
    if k < 0 or k > n:
        return float("-inf")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def required_rr_sets(
    num_nodes: int,
    s: int,
    epsilon: float,
    opt_lower_bound: float,
    *,
    ell: float = 1.0,
) -> int:
    """Eq. (5): ``L(s, ε) = (8 + 2ε) n (ℓ log n + log C(n, s) + log 2) /
    (OPT_s · ε²)``, rounded up.

    ``opt_lower_bound`` stands in for the unknown ``OPT_s``; a lower bound
    keeps the guarantee (more samples than strictly necessary).
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if opt_lower_bound <= 0:
        raise ValueError(f"opt_lower_bound must be > 0, got {opt_lower_bound}")
    if ell <= 0:
        raise ValueError(f"ell must be > 0, got {ell}")
    s = min(max(int(s), 1), num_nodes)
    n = float(num_nodes)
    numerator = (8.0 + 2.0 * epsilon) * n * (
        ell * math.log(n) + log_binomial(num_nodes, s) + math.log(2.0)
    )
    return int(math.ceil(numerator / (opt_lower_bound * epsilon**2)))


def _working_pool(sets, num_nodes: int) -> RRSetPool:
    """A fresh, mutable pool over ``sets`` for one greedy-cover run.

    ``sets`` may be a ``list[np.ndarray]`` (compat), an
    :class:`RRSetPool`, or a :class:`CSRSetView` — pool/view inputs are
    bulk-copied from their flat CSR buffers in O(members), never mutated.
    """
    pool = RRSetPool(num_nodes)
    if isinstance(sets, RRSetPool):
        sets = sets.prefix_view()
    if isinstance(sets, CSRSetView):
        pool.add_flat(sets.members, np.diff(sets.indptr))
    else:
        pool.add_sets(sets)
    return pool


def greedy_max_coverage(
    sets,
    num_nodes: int,
    k: int,
    *,
    eligible=None,
) -> tuple[list[int], int]:
    """Greedy Max k-Cover over RR-sets (TIM phase 2).

    ``sets`` may be a list of member arrays, an :class:`RRSetPool`, or a
    :class:`CSRSetView` (e.g. from :meth:`RRSetPool.prefix_view`); the
    input is never mutated.  Returns the chosen nodes (in selection
    order) and the number of sets they jointly cover.  ``eligible``
    optionally restricts candidates to a boolean mask over nodes.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    collection = _working_pool(sets, num_nodes)
    coverage = collection.coverage()
    mask = None
    if eligible is not None:
        # Copy: the mask is consumed destructively as seeds are chosen.
        mask = np.array(eligible, dtype=bool, copy=True)
        if mask.shape != (num_nodes,):
            raise ValueError(f"eligible must have shape ({num_nodes},)")
    chosen: list[int] = []
    covered = 0
    for _ in range(min(k, num_nodes)):
        if mask is None:
            best = int(np.argmax(coverage))
        else:
            if not mask.any():
                break
            scores = np.where(mask, coverage, -1)
            best = int(np.argmax(scores))
        if coverage[best] <= 0:
            break
        covered += collection.remove_covered(best)
        chosen.append(best)
        if mask is not None:
            mask[best] = False
    return chosen, covered


def estimate_opt_lower_bound(
    sampler: RRSetSampler,
    s: int,
    *,
    pilot_sets: int = 2_000,
    existing=None,
) -> float:
    """Pilot estimate of a lower bound on ``OPT_s`` under plain IC.

    Greedily covers ``s`` seeds on a pilot sample; ``n · (covered/θ)`` is
    an estimate of the greedy set's spread, which lower-bounds the
    optimum.  The result is floored at ``s`` because any ``s`` distinct
    seeds have spread at least ``s`` under IC without CTPs.

    ``existing`` may be a list of member arrays (compat) or an
    :class:`RRSetPool`; a pool short of ``pilot_sets`` sets is topped up
    in place (its sampler stream advances accordingly).
    """
    n = sampler.graph.num_nodes
    if isinstance(existing, RRSetPool):
        pool = existing
        if pool.num_total < pilot_sets:
            sampler.sample_into(pool, pilot_sets - pool.num_total)
        if not pool.num_total:
            raise EstimationError("cannot estimate OPT from zero RR-sets")
        view = pool.prefix_view()
        _, covered = greedy_max_coverage(view, n, s)
        estimate = n * covered / view.num_sets
        return float(max(estimate, min(s, n), 1.0))
    sets = list(existing) if existing else []
    if len(sets) < pilot_sets:
        sets.extend(sampler.sample(pilot_sets - len(sets)))
    if not sets:
        raise EstimationError("cannot estimate OPT from zero RR-sets")
    _, covered = greedy_max_coverage(sets, n, s)
    estimate = n * covered / len(sets)
    return float(max(estimate, min(s, n), 1.0))


def kpt_estimation(
    graph: DirectedGraph,
    edge_probabilities,
    s: int,
    *,
    ell: float = 1.0,
    seed=None,
) -> float:
    """TIM's phase-1 KPT estimator (Algorithm 2 of Tang et al. [25]).

    Returns a value that, with high probability, lower-bounds ``OPT_s``.
    Kept for reference/cross-checks; TIRM defaults to the greedy pilot of
    :func:`estimate_opt_lower_bound`, which behaves better at the small
    scales this reproduction runs at.
    """
    n, m = graph.num_nodes, graph.num_edges
    if n < 2 or m == 0:
        return 1.0
    rng = as_generator(seed)
    sampler = RRSetSampler(graph, edge_probabilities, seed=rng)
    in_degrees = graph.in_degrees()
    log2n = max(int(math.floor(math.log2(n))), 1)
    s = min(max(int(s), 1), n)
    for i in range(1, log2n):
        c_i = int(math.ceil((6.0 * ell * math.log(n) + 6.0 * math.log(log2n)) * 2.0**i))
        pool = RRSetPool(n)
        sampler.sample_into(pool, c_i)
        view = pool.prefix_view()
        lengths = np.diff(view.indptr)
        owners = np.repeat(np.arange(c_i), lengths)
        widths = np.bincount(
            owners, weights=in_degrees[view.members].astype(np.float64), minlength=c_i
        )
        kappa_sum = float(np.sum(1.0 - (1.0 - widths / m) ** s))
        if kappa_sum / c_i > 1.0 / (2.0**i):
            return max(n * kappa_sum / (2.0 * c_i), 1.0)
    return 1.0


@dataclass(frozen=True)
class TIMResult:
    """Output of the standalone TIM influence maximizer."""

    seeds: list[int]
    estimated_spread: float
    num_rr_sets: int


class TIMInfluenceMaximizer:
    """Classic TIM: near-linear-time influence maximization (§5.1).

    Provides a ``(1 − 1/e − ε)``-approximate seed set of a requested size
    under the IC model.  TIRM does *not* call this class (its seed count
    is dynamic); it exists as a public API and as the fixed-``s``
    comparator in the AB2 ablation bench.
    """

    def __init__(
        self,
        graph: DirectedGraph,
        edge_probabilities,
        *,
        epsilon: float = 0.1,
        ell: float = 1.0,
        max_rr_sets: int = 1_000_000,
        pilot_sets: int = 2_000,
        seed=None,
    ) -> None:
        if max_rr_sets < 1:
            raise ValueError("max_rr_sets must be >= 1")
        self.graph = graph
        self.epsilon = float(epsilon)
        self.ell = float(ell)
        self.max_rr_sets = int(max_rr_sets)
        self.pilot_sets = int(pilot_sets)
        self._sampler = RRSetSampler(graph, edge_probabilities, seed=seed)
        self._pool = RRSetPool(graph.num_nodes)

    def select(self, k: int) -> TIMResult:
        """Choose ``k`` seeds; returns them with the estimated spread."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        n = self.graph.num_nodes
        pool = self._pool
        if pool.num_total < self.pilot_sets:
            self._sampler.sample_into(pool, self.pilot_sets - pool.num_total)
        opt_lb = estimate_opt_lower_bound(
            self._sampler, k, pilot_sets=pool.num_total, existing=pool
        )
        theta = min(
            required_rr_sets(n, k, self.epsilon, opt_lb, ell=self.ell), self.max_rr_sets
        )
        if pool.num_total < theta:
            self._sampler.sample_into(pool, theta - pool.num_total)
        seeds, covered = greedy_max_coverage(pool.prefix_view(), n, k)
        spread = n * covered / pool.num_total
        return TIMResult(
            seeds=seeds, estimated_spread=spread, num_rr_sets=pool.num_total
        )
