"""RRC-sets: RR-sets with click-through probabilities baked in (§5.2).

The generation mirrors RR-set sampling with one extra, independent coin
per node: when a node ``v`` is reached through a live edge (or chosen as
the root), it enters the RRC-set only if its CTP coin (probability
``δ(v)``) succeeds — but the reverse BFS continues through ``v`` either
way, because ``v``'s in-neighbors can still be valid seeds that activate
``v`` en route to the root.

By Lemma 2, ``n · F_Q(S)`` is an unbiased estimator of the IC-CTP spread;
by Theorem 5, CTP-weighting marginal coverages of plain RR-sets gives the
same expectation while needing roughly two orders of magnitude fewer
samples (CTPs are 1–3%), which is why TIRM uses plain RR-sets.  RRC-sets
are kept for the Theorem-5 equivalence tests and the AB1 ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion._frontier import gather_edge_slots
from repro.graph.digraph import DirectedGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_array


def sample_rrc_set(
    graph: DirectedGraph,
    edge_probabilities,
    ctps,
    *,
    rng=None,
    root: int | None = None,
) -> np.ndarray:
    """One random RRC-set (possibly empty), as an int64 array of node ids."""
    probs = np.asarray(edge_probabilities, dtype=np.float64)
    delta = np.asarray(ctps, dtype=np.float64)
    rng = as_generator(rng)
    if root is None:
        root = int(rng.integers(0, graph.num_nodes))
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[root] = True
    members: list[int] = []
    # Root node-test: the root enters the set only if its own CTP coin
    # succeeds; traversal continues regardless (§5.2).
    if rng.random() < delta[root]:
        members.append(root)
    frontier = np.asarray([root], dtype=np.int64)
    while frontier.size:
        slots = gather_edge_slots(graph.in_indptr, frontier)
        if slots.size == 0:
            break
        edge_ids = graph.in_edge_ids[slots]
        live = rng.random(slots.size) < probs[edge_ids]
        sources = graph.in_sources[slots[live]]
        fresh = np.unique(sources[~visited[sources]])
        if fresh.size == 0:
            break
        visited[fresh] = True
        # Node-level coin: "live" nodes are valid seeds and join the set;
        # "blocked" nodes are traversed but excluded.
        node_live = rng.random(fresh.size) < delta[fresh]
        members.extend(int(v) for v in fresh[node_live])
        frontier = fresh
    return np.asarray(sorted(members), dtype=np.int64)


def _check_rrc_args(graph, edge_probabilities, ctps, count):
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    probs = check_probability_array("edge_probabilities", edge_probabilities)
    delta = check_probability_array("ctps", ctps)
    if probs.shape != (graph.num_edges,):
        raise ValueError(f"edge_probabilities must have shape ({graph.num_edges},)")
    if delta.shape != (graph.num_nodes,):
        raise ValueError(f"ctps must have shape ({graph.num_nodes},)")
    return probs, delta


def sample_rrc_sets(
    graph: DirectedGraph,
    edge_probabilities,
    ctps,
    count: int,
    *,
    rng=None,
) -> list[np.ndarray]:
    """``count`` independent RRC-sets."""
    probs, delta = _check_rrc_args(graph, edge_probabilities, ctps, count)
    rng = as_generator(rng)
    return [sample_rrc_set(graph, probs, delta, rng=rng) for _ in range(count)]


def sample_rrc_sets_into(
    graph: DirectedGraph,
    edge_probabilities,
    ctps,
    count: int,
    pool,
    *,
    rng=None,
) -> None:
    """``count`` independent RRC-sets appended straight into ``pool``.

    Draws the same sets as :func:`sample_rrc_sets` for the same ``rng``
    (identical stream) but accumulates members flat and registers them
    with one bulk :meth:`~repro.rrset.pool.RRSetPool.add_flat` call — no
    per-set list-of-arrays.  RRC-sets may be empty; empty sets still
    count toward the pool's ``num_total`` (the ``F_Q`` denominator).
    """
    probs, delta = _check_rrc_args(graph, edge_probabilities, ctps, count)
    rng = as_generator(rng)
    flat: list[int] = []
    lengths = np.empty(count, dtype=np.int64)
    for i in range(count):
        members = sample_rrc_set(graph, probs, delta, rng=rng)
        flat.extend(members.tolist())
        lengths[i] = members.size
    pool.add_flat(np.asarray(flat, dtype=np.int64), lengths)
