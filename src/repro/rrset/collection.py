"""A coverage index over sampled RR-sets.

This is TIRM's working memory for one advertiser: it stores the sampled
sets, maintains per-node coverage counts (how many *active* sets contain
each node), and supports the two mutations the algorithm performs:

* ``add_sets`` — Algorithm 2 line 17, when the seed-size estimate grows;
* ``remove_covered`` — Algorithm 2 line 12, after a seed is chosen the
  sets it covers are removed so later coverages are *marginal*.

Since the flat-CSR refactor the implementation lives in
:class:`repro.rrset.pool.RRSetPool`; this class survives as the
historical name for it.  All storage is contiguous numpy buffers (int32
members + CSR inverted index) and all mutations are vectorized — see
``docs/rrset_engine.md``.
"""

from __future__ import annotations

import warnings

from repro.rrset.pool import RRSetPool

warnings.warn(
    "repro.rrset.collection is deprecated: RRSetCollection is a thin alias of "
    "repro.rrset.pool.RRSetPool — import the pool directly",
    DeprecationWarning,
    stacklevel=2,
)


class RRSetCollection(RRSetPool):
    """Mutable collection of RR-sets over ``num_nodes`` users.

    Thin back-compat alias of :class:`~repro.rrset.pool.RRSetPool`; new
    code should use the pool directly.
    """
