"""A coverage index over sampled RR-sets.

This is TIRM's working memory for one advertiser: it stores the sampled
sets, maintains per-node coverage counts (how many *active* sets contain
each node), and supports the two mutations the algorithm performs:

* ``add_sets`` — Algorithm 2 line 17, when the seed-size estimate grows;
* ``remove_covered`` — Algorithm 2 line 12, after a seed is chosen the
  sets it covers are removed so later coverages are *marginal*.

Removal is lazy at the set level (a boolean mask) but coverage counts are
updated eagerly, keeping ``SelectBestNode`` an O(1)-per-candidate lookup.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class RRSetCollection:
    """Mutable collection of RR-sets over ``num_nodes`` users."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be >= 0")
        self.num_nodes = int(num_nodes)
        self._sets: list[np.ndarray] = []
        self._alive: list[bool] = []
        self._member_of: list[list[int]] = [[] for _ in range(num_nodes)]
        self._coverage = np.zeros(num_nodes, dtype=np.int64)
        self._num_alive = 0

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add_sets(self, sets: Iterable[np.ndarray]) -> Sequence[int]:
        """Register new RR-sets; returns their ids."""
        new_ids = []
        member_of = self._member_of
        coverage = self._coverage
        for members in sets:
            members = np.asarray(members, dtype=np.int64)
            set_id = len(self._sets)
            self._sets.append(members)
            self._alive.append(True)
            self._num_alive += 1
            for node in members.tolist():
                member_of[node].append(set_id)
                coverage[node] += 1
            new_ids.append(set_id)
        return new_ids

    def remove_covered(self, node: int) -> int:
        """Remove every alive set containing ``node``; returns how many.

        This is the "remove RR-sets that are covered" step after a seed is
        selected: later coverage counts then measure *marginal* coverage.
        """
        removed = 0
        coverage = self._coverage
        for set_id in self._member_of[node]:
            if self._alive[set_id]:
                self._alive[set_id] = False
                self._num_alive -= 1
                for member in self._sets[set_id].tolist():
                    coverage[member] -= 1
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_total(self) -> int:
        """Total sets ever sampled (the ``θ`` denominator)."""
        return len(self._sets)

    @property
    def num_alive(self) -> int:
        """Sets not yet covered by a chosen seed."""
        return self._num_alive

    def coverage(self) -> np.ndarray:
        """Read-only view of per-node alive-set coverage counts."""
        view = self._coverage.view()
        view.flags.writeable = False
        return view

    def coverage_of(self, node: int) -> int:
        """Coverage count of one node among alive sets."""
        return int(self._coverage[node])

    def coverage_of_set(self, nodes) -> int:
        """Number of alive sets intersecting ``nodes`` (for ``F_R(S)``)."""
        nodes = set(int(v) for v in np.asarray(nodes, dtype=np.int64).ravel())
        hit = 0
        seen: set[int] = set()
        for node in nodes:
            for set_id in self._member_of[node]:
                if self._alive[set_id] and set_id not in seen:
                    seen.add(set_id)
                    hit += 1
        return hit

    def sets_containing(self, node: int, *, alive_only: bool = True) -> list[int]:
        """Ids of sets containing ``node``."""
        ids = self._member_of[node]
        if not alive_only:
            return list(ids)
        return [i for i in ids if self._alive[i]]

    def get_set(self, set_id: int) -> np.ndarray:
        """Members of a set by id (regardless of alive status)."""
        return self._sets[set_id]

    def all_sets(self) -> list[np.ndarray]:
        """Every sampled set, alive or covered (selection order).

        TIRM's seed-size re-estimation runs a fresh greedy cover over the
        *full* sample to lower-bound ``OPT_s``, so it needs covered sets
        back.
        """
        return list(self._sets)

    def is_alive(self, set_id: int) -> bool:
        """Whether a set is still uncovered."""
        return self._alive[set_id]

    def average_set_size(self) -> float:
        """Mean size over all sampled sets (EPT-style diagnostics)."""
        if not self._sets:
            return 0.0
        return float(sum(len(s) for s in self._sets) / len(self._sets))

    def memory_bytes(self) -> int:
        """Approximate bytes held: set arrays + inverted index + coverage.

        This powers the Table-4 accounting (TIRM's memory is dominated by
        the sampled RR-sets).
        """
        sets_bytes = sum(s.nbytes for s in self._sets)
        # Inverted index entries are Python ints inside lists; count 8
        # bytes of payload per entry as a numpy-equivalent figure.
        index_entries = sum(len(lst) for lst in self._member_of)
        return int(sets_bytes + 8 * index_entries + self._coverage.nbytes)

    def __repr__(self) -> str:
        return (
            f"RRSetCollection(total={self.num_total}, alive={self.num_alive}, "
            f"n={self.num_nodes})"
        )
