"""Flat CSR-backed storage engine for RR-sets.

This module is the contiguous-layout replacement for the original
``list[np.ndarray]`` + ``list[list[int]]`` collection: every sampled set
lives in one growable ``int32`` members buffer addressed by an ``indptr``
array, and the node→set inverted index is a second CSR pair built in bulk
with ``np.argsort``/``np.bincount`` instead of per-element Python
appends.  All hot mutations (``add_flat``, ``remove_covered``) and
queries (``coverage_of_set``, ``sets_containing``) are numpy kernels over
those buffers.  See ``docs/rrset_engine.md`` for the layout, the
amortized index-rebuild policy, and the determinism contract.

Index maintenance policy (amortized rebuilds):

* the *main* index covers sets ``[0, _indexed_sets)`` and is rebuilt in
  bulk only when the pending region grows past ``1/4`` of the indexed
  members (geometric threshold, so total rebuild work is ``O(M log M)``
  over the pool's lifetime);
* smaller batches get a *pending mini-index* over sets
  ``[_indexed_sets, num_total)`` — a (sorted member, set id) pair array
  over just the pending region, queried with ``searchsorted``, so
  ``add_*`` costs O(pending log pending) with no O(num_nodes)
  allocations, and queries never degrade to linear scans.

Every query concatenates the main slice and the mini slice; neither path
touches Python-level per-element loops.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import CapacityError

#: Members are node ids; int32 halves RR memory vs the old int64 arrays
#: and comfortably addresses graphs up to 2^31 nodes.
MEMBER_DTYPE = np.int32
#: Set ids in the inverted index; int32 supports 2^31 sets per pool.
SET_ID_DTYPE = np.int32

#: Hard per-pool limits implied by the int32 storage dtypes: set ids in
#: the inverted index and member offsets must both stay below 2^31.
#: ``add_flat`` refuses appends that would cross either limit (with a
#: :class:`~repro.errors.CapacityError`) before touching any buffer —
#: silently wrapping ids would corrupt the CSR index.
MAX_SETS = int(np.iinfo(SET_ID_DTYPE).max)
MAX_MEMBERS = int(np.iinfo(np.int32).max)

#: Full index rebuild triggers when pending members exceed this fraction
#: of the indexed members (geometric growth ⇒ amortized O(log) rebuilds).
_REBUILD_FRACTION = 4
#: Below this many indexed members, just rebuild the full index.
_MIN_INDEXED_MEMBERS = 4_096


class CSRSetView:
    """A read-only CSR window over a prefix of a pool's sets.

    ``indptr`` has ``num_sets + 1`` entries and indexes into ``members``.
    Views alias the pool's buffers and are O(1) to create.  A view bound
    to its pool is *self-healing*: the pool is append-only, so the first
    ``num_sets`` sets never change, and when a growth-triggered
    reallocation retires the buffer a view points at, the view
    re-materializes itself against the live buffer on next access (the
    pool's generation counter detects the swap).  Holding a stale view
    therefore never silently reads — or keeps alive — a retired buffer.

    Detached views (``pool=None``, e.g. after crossing a process
    boundary) are plain frozen windows with no refresh behaviour.
    """

    __slots__ = ("_indptr", "_members", "num_sets", "_pool", "_generation")

    def __init__(
        self,
        indptr: np.ndarray,
        members: np.ndarray,
        num_sets: int,
        *,
        pool: "RRSetPool | None" = None,
    ) -> None:
        self._indptr = indptr
        self._members = members
        self.num_sets = int(num_sets)
        self._pool = pool
        self._generation = pool.generation if pool is not None else -1

    def _refresh(self) -> None:
        pool = self._pool
        if pool is not None and pool.generation != self._generation:
            end = int(pool._indptr[self.num_sets])
            self._indptr = pool._indptr[: self.num_sets + 1]
            self._members = pool._members[:end]
            self._generation = pool.generation

    @property
    def indptr(self) -> np.ndarray:
        self._refresh()
        return self._indptr

    @property
    def members(self) -> np.ndarray:
        self._refresh()
        return self._members

    def detach(self) -> "CSRSetView":
        """A pool-independent copy of this window (safe to pickle/ship)."""
        self._refresh()
        return CSRSetView(
            self._indptr.copy(), self._members.copy(), self.num_sets
        )

    def get_set(self, set_id: int) -> np.ndarray:
        self._refresh()
        return self._members[self._indptr[set_id] : self._indptr[set_id + 1]]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_sets={self.num_sets})"


def _bump_counts(counts: np.ndarray, members: np.ndarray, sign: int) -> None:
    """``counts[members] += sign`` per occurrence, without always paying
    an O(len(counts)) ``bincount`` scratch array: small batches go
    through ``ufunc.at`` (O(batch)), large ones through ``bincount``."""
    if members.size == 0:
        return
    n = counts.size
    if members.size * 16 < n:
        if sign > 0:
            np.add.at(counts, members, 1)
        else:
            np.subtract.at(counts, members, 1)
    elif sign > 0:
        counts += np.bincount(members, minlength=n)
    else:
        counts -= np.bincount(members, minlength=n)


def _gather_slices(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat positions covering ``[starts[i], starts[i]+lengths[i])`` for
    every ``i``, concatenated — the standard repeat/cumsum multi-slice
    gather, no Python loop."""
    lengths = lengths.astype(np.int64, copy=False)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    offsets = np.repeat(starts.astype(np.int64, copy=False) - (ends - lengths), lengths)
    return offsets + np.arange(total, dtype=np.int64)


def _build_csr_index(
    members: np.ndarray,
    first_set: int,
    lengths: np.ndarray,
    num_nodes: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Bulk-build a node→set CSR index over one contiguous member region.

    ``members`` is the flat member slice of sets ``first_set ..``;
    ``lengths`` their sizes.  Returns ``(indptr, set_ids)`` where
    ``set_ids[indptr[v]:indptr[v+1]]`` lists the sets containing ``v`` in
    ascending set order (stable sort on node keeps per-node set order).
    """
    counts = np.bincount(members, minlength=num_nodes)
    indptr = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
    owners = np.repeat(
        np.arange(first_set, first_set + lengths.size, dtype=SET_ID_DTYPE),
        lengths,
    )
    order = np.argsort(members, kind="stable")
    return indptr, owners[order]


class RRSetPool:
    """Append-only pool of RR-sets over ``num_nodes`` users.

    Public API is a superset of the old ``RRSetCollection``: TIRM's two
    mutations (``add_sets`` / ``remove_covered``), eager per-node coverage
    counts, and the coverage queries — plus the bulk entry point
    ``add_flat`` (samplers write straight into the pool) and zero-copy
    ``prefix_view`` / ``first_k_sets`` accessors for O(pilot) OPT
    estimation.

    Examples
    --------
    Three sets over five nodes; node 2 appears in two of them, and
    removing the sets it covers updates the eager coverage counters::

        >>> import numpy as np
        >>> from repro.rrset import RRSetPool
        >>> pool = RRSetPool(num_nodes=5)
        >>> pool.add_sets([[0, 2], [2, 3], [4]])   # -> the new set ids
        [0, 1, 2]
        >>> pool.num_total, pool.num_alive
        (3, 3)
        >>> int(pool.coverage_of(2))
        2
        >>> pool.remove_covered(2)      # kill the sets containing node 2
        2
        >>> pool.num_alive, int(pool.coverage_of(3))
        (1, 0)
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be >= 0")
        self.num_nodes = int(num_nodes)
        self._members = np.empty(1_024, dtype=MEMBER_DTYPE)
        self._members_used = 0
        self._indptr = np.zeros(257, dtype=np.int64)
        self._num_sets = 0
        self._alive_mask = np.empty(256, dtype=bool)
        self._num_alive = 0
        self._coverage = np.zeros(num_nodes, dtype=np.int64)
        # Main inverted index: covers sets [0, _indexed_sets).
        self._idx_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        self._idx_sets = np.empty(0, dtype=SET_ID_DTYPE)
        self._indexed_sets = 0
        self._indexed_members = 0
        # Pending mini-index over sets [_indexed_sets, _num_sets): the
        # pending members sorted ascending, with their owning set ids in
        # lockstep.  Queried by searchsorted — no O(num_nodes) indptr.
        self._pend_nodes = np.empty(0, dtype=MEMBER_DTYPE)
        self._pend_sets = np.empty(0, dtype=SET_ID_DTYPE)
        # Bumped whenever a growth reallocation retires a storage buffer;
        # outstanding CSRSetViews use it to re-materialize themselves.
        self._generation = 0

    @property
    def generation(self) -> int:
        """Buffer generation: increments on every growth reallocation."""
        return self._generation

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add_sets(self, sets: Iterable[np.ndarray]) -> Sequence[int]:
        """Register new RR-sets; returns their ids (compat API).

        Bulk path: the per-set arrays are concatenated once and appended
        through :meth:`add_flat` — no per-element index updates.
        """
        arrays = [np.asarray(s).ravel() for s in sets]
        first = self._num_sets
        if not arrays:
            return []
        lengths = np.asarray([a.size for a in arrays], dtype=np.int64)
        if sum(a.size for a in arrays):
            flat = np.concatenate(arrays).astype(MEMBER_DTYPE, copy=False)
        else:
            flat = np.empty(0, dtype=MEMBER_DTYPE)
        self.add_flat(flat, lengths)
        return list(range(first, self._num_sets))

    def add_flat(self, members: np.ndarray, lengths: np.ndarray) -> None:
        """Append ``len(lengths)`` sets whose members are concatenated in
        ``members``.  This is the samplers' bulk entry point.

        Exactly one copy: members land in the pool's growable buffer via
        a single slice assignment, which casts integer inputs in place —
        no ``astype`` staging copy.  (Non-integer inputs pay their own
        explicit conversion first — a legacy convenience path.)
        """
        members = np.asarray(members).ravel()
        if members.size and not np.issubdtype(members.dtype, np.integer):
            members = members.astype(MEMBER_DTYPE)
        lengths = np.asarray(lengths, dtype=np.int64).ravel()
        self._validate_flat(members, lengths)
        self._append_flat(members, lengths)

    def add_flat_from_buffer(
        self,
        buffer,
        *,
        num_sets: int,
        num_members: int,
        lengths_offset: int = 0,
        members_offset: int | None = None,
    ) -> None:
        """Append ``num_sets`` sets straight out of an external buffer —
        e.g. a ``multiprocessing.shared_memory`` segment — with exactly
        one copy.

        The region follows the engine's packed-block layout: ``num_sets``
        ``int64`` lengths starting at byte ``lengths_offset``, and
        ``num_members`` ``int32`` members starting at ``members_offset``
        (default: immediately after the lengths).  Validation and the
        append run over zero-copy views of the buffer; the single copy
        is the write into the pool's own growable arrays, so the caller
        may release/unlink the buffer as soon as this returns — the pool
        never keeps a reference to it (``memory_bytes`` stays exact).
        """
        num_sets, num_members = int(num_sets), int(num_members)
        if num_sets < 0 or num_members < 0:
            raise ValueError(
                f"num_sets and num_members must be >= 0, got "
                f"{num_sets} / {num_members}"
            )
        if members_offset is None:
            members_offset = lengths_offset + num_sets * 8
        lengths = np.frombuffer(
            buffer, dtype=np.int64, count=num_sets, offset=int(lengths_offset)
        )
        members = np.frombuffer(
            buffer, dtype=MEMBER_DTYPE, count=num_members,
            offset=int(members_offset),
        )
        self._validate_flat(members, lengths)
        self._append_flat(members, lengths)

    def _validate_flat(self, members: np.ndarray, lengths: np.ndarray) -> None:
        if int(lengths.sum()) != members.size:
            raise ValueError("lengths must sum to members.size")
        if np.any(lengths < 0):
            raise ValueError("set lengths must be >= 0")
        if members.size:
            lo, hi = int(members.min()), int(members.max())
            if lo < 0 or hi >= self.num_nodes:
                raise ValueError(
                    f"members must lie in [0, {self.num_nodes - 1}], found [{lo}, {hi}]"
                )

    def _append_flat(self, members: np.ndarray, lengths: np.ndarray) -> None:
        """The single-copy append core shared by :meth:`add_flat` and
        :meth:`add_flat_from_buffer` (inputs already validated)."""
        count = lengths.size
        if count == 0:
            return
        if self._num_sets + count > MAX_SETS:
            raise CapacityError(
                f"appending {count} sets to a pool holding {self._num_sets} "
                f"would exceed the int32 set-id limit ({MAX_SETS}); shard the "
                "sample across pools"
            )
        if self._members_used + members.size > MAX_MEMBERS:
            raise CapacityError(
                f"appending {members.size} members to a pool holding "
                f"{self._members_used} would exceed the int32 member-offset "
                f"limit ({MAX_MEMBERS}); shard the sample across pools"
            )
        self._reserve_members(self._members_used + members.size)
        self._reserve_sets(self._num_sets + count)
        # The one and only copy: slice assignment casts same-kind integer
        # inputs (int64 views included) directly into the int32 buffer.
        self._members[self._members_used : self._members_used + members.size] = members
        new_indptr = self._members_used + np.cumsum(lengths)
        self._indptr[self._num_sets + 1 : self._num_sets + count + 1] = new_indptr
        self._alive_mask[self._num_sets : self._num_sets + count] = True
        self._members_used += members.size
        self._num_sets += count
        self._num_alive += count
        _bump_counts(self._coverage, members, +1)
        self._refresh_index()

    def remove_covered(self, node: int) -> int:
        """Remove every alive set containing ``node``; returns how many.

        One index slice finds the candidate sets; their members are
        gathered with a single multi-slice and coverage is decremented by
        one ``np.bincount`` — no per-set Python loops.
        """
        ids = self._ids_containing(node)
        if ids.size == 0:
            return 0
        ids = ids[self._alive_mask[ids]]
        if ids.size == 0:
            return 0
        # A set that contains ``node`` twice (possible through the public
        # ``add_sets``) appears twice in the index; dedup before killing.
        ids = np.unique(ids)
        self._alive_mask[ids] = False
        self._num_alive -= ids.size
        _bump_counts(self._coverage, self._gather_members(ids), -1)
        return int(ids.size)

    def kill_sets(self, set_ids) -> int:
        """Mark the given sets dead by id, decrementing coverage.

        This is the checkpoint-restore primitive: after a pool's sets
        have been re-derived (or re-loaded from a spill), the snapshot's
        alive mask is re-applied by killing exactly the sets that the
        chosen seeds had covered.  Already-dead ids are ignored; returns
        how many sets were actually killed.
        """
        ids = np.unique(np.asarray(set_ids, dtype=np.int64).ravel())
        if ids.size == 0:
            return 0
        if ids[0] < 0 or ids[-1] >= self._num_sets:
            raise IndexError(f"set ids must lie in [0, {self._num_sets})")
        ids = ids[self._alive_mask[ids]]
        if ids.size == 0:
            return 0
        self._alive_mask[ids] = False
        self._num_alive -= ids.size
        _bump_counts(self._coverage, self._gather_members(ids), -1)
        return int(ids.size)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_total(self) -> int:
        """Total sets ever sampled (the ``θ`` denominator)."""
        return self._num_sets

    @property
    def num_alive(self) -> int:
        """Sets not yet covered by a chosen seed."""
        return self._num_alive

    def coverage(self) -> np.ndarray:
        """Read-only view of per-node alive-set coverage counts."""
        view = self._coverage.view()
        view.flags.writeable = False
        return view

    def coverage_of(self, node: int) -> int:
        """Coverage count of one node among alive sets."""
        return int(self._coverage[node])

    def coverage_of_set(self, nodes, *, alive_only: bool = True) -> int:
        """Number of alive sets intersecting ``nodes`` (for ``F_R(S)``).

        Vectorized: gathers every candidate set id via index slices, then
        dedups with one ``np.unique`` over the alive survivors (the old
        implementation walked Python lists with a ``set``).  Pass
        ``alive_only=False`` to count over *all* sampled sets — e.g. for
        spread estimation after seeds have removed their covered sets.
        """
        nodes = np.unique(np.asarray(nodes, dtype=np.int64).ravel())
        if nodes.size == 0:
            return 0
        if nodes[0] < 0 or nodes[-1] >= self.num_nodes:
            raise IndexError("node ids out of range")
        ids = self._ids_containing_many(nodes)
        if ids.size == 0:
            return 0
        if alive_only:
            ids = ids[self._alive_mask[ids]]
        return int(np.unique(ids).size)

    def set_ids_containing(self, node: int, *, alive_only: bool = True) -> np.ndarray:
        """Ids of sets containing ``node`` as an array (fast path)."""
        ids = self._ids_containing(node)
        if alive_only and ids.size:
            ids = ids[self._alive_mask[ids]]
        return ids

    def sets_containing(self, node: int, *, alive_only: bool = True) -> list[int]:
        """Ids of sets containing ``node`` (compat list API)."""
        return [int(i) for i in self.set_ids_containing(node, alive_only=alive_only)]

    def get_set(self, set_id: int) -> np.ndarray:
        """Members of a set by id (a zero-copy view into the pool)."""
        if not 0 <= set_id < self._num_sets:
            raise IndexError(f"set id {set_id} out of range")
        return self._members[self._indptr[set_id] : self._indptr[set_id + 1]]

    def first_k_sets(self, k: int) -> list[np.ndarray]:
        """Views of the first ``min(k, num_total)`` sets — O(k), unlike
        the old ``all_sets()[:k]`` which materialised every set.

        The returned arrays alias the members buffer *as of this call*;
        across later ``add_*`` calls prefer :meth:`prefix_view`, whose
        window survives growth reallocations.
        """
        k = min(max(int(k), 0), self._num_sets)
        indptr = self._indptr
        members = self._members
        return [members[indptr[i] : indptr[i + 1]] for i in range(k)]

    def prefix_view(self, k: int | None = None) -> CSRSetView:
        """Zero-copy CSR window over the first ``k`` sets (default: all).

        This is the O(1) accessor the OPT pilot uses.  The view stays
        valid across later ``add_*`` calls: if a growth reallocation
        retires the underlying buffer, the view re-materializes itself
        against the live one on next access (see :class:`CSRSetView`).
        """
        k = self._num_sets if k is None else min(max(int(k), 0), self._num_sets)
        end = int(self._indptr[k])
        return CSRSetView(
            self._indptr[: k + 1], self._members[:end], k, pool=self
        )

    def all_sets(self) -> list[np.ndarray]:
        """Every sampled set, alive or covered (selection order).

        TIRM's seed-size re-estimation runs a fresh greedy cover over the
        *full* sample to lower-bound ``OPT_s``, so it needs covered sets
        back.  Prefer :meth:`prefix_view` where a CSR window suffices.
        """
        return self.first_k_sets(self._num_sets)

    def is_alive(self, set_id: int) -> bool:
        """Whether a set is still uncovered."""
        if not 0 <= set_id < self._num_sets:
            raise IndexError(f"set id {set_id} out of range")
        return bool(self._alive_mask[set_id])

    def alive_mask(self) -> np.ndarray:
        """Read-only alive mask over all sets."""
        view = self._alive_mask[: self._num_sets].view()
        view.flags.writeable = False
        return view

    def average_set_size(self) -> float:
        """Mean size over all sampled sets (EPT-style diagnostics)."""
        if not self._num_sets:
            return 0.0
        return float(self._members_used / self._num_sets)

    def memory_bytes(self) -> int:
        """Bytes of RR data actually held: the exact ``nbytes`` of the
        used portions of the members/indptr/index/alive/coverage buffers.

        Unlike the old estimate (which priced Python-list index entries
        at 8 bytes each and ignored their real object overhead), this is
        the honest Table-4 figure: the engine stores nothing else.
        """
        itemsize = self._members.itemsize
        idx_item = self._idx_sets.itemsize
        pending = self._members_used - self._indexed_members
        return int(
            self._members_used * itemsize
            + (self._num_sets + 1) * self._indptr.itemsize
            + self._num_sets * self._alive_mask.itemsize
            + self._coverage.nbytes
            + self._idx_indptr.nbytes
            + self._indexed_members * idx_item
            + pending * (self._pend_nodes.itemsize + self._pend_sets.itemsize)
        )

    def allocated_bytes(self) -> int:
        """Capacity actually allocated (≥ :meth:`memory_bytes` due to the
        growth slack of the append buffers)."""
        return int(
            self._members.nbytes
            + self._indptr.nbytes
            + self._alive_mask.nbytes
            + self._coverage.nbytes
            + self._idx_indptr.nbytes
            + self._idx_sets.nbytes
            + self._pend_nodes.nbytes
            + self._pend_sets.nbytes
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(total={self.num_total}, alive={self.num_alive}, "
            f"n={self.num_nodes})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _reserve_members(self, needed: int) -> None:
        if needed <= self._members.size:
            return
        if needed > MAX_MEMBERS:
            raise CapacityError(
                f"pool cannot hold {needed} members: int32 member-offset "
                f"limit is {MAX_MEMBERS}"
            )
        capacity = min(max(self._members.size * 2, needed, 1_024), MAX_MEMBERS)
        grown = np.empty(capacity, dtype=MEMBER_DTYPE)
        grown[: self._members_used] = self._members[: self._members_used]
        self._members = grown
        self._generation += 1

    def _reserve_sets(self, needed: int) -> None:
        if needed <= self._alive_mask.size:
            return
        if needed > MAX_SETS:
            raise CapacityError(
                f"pool cannot hold {needed} sets: int32 set-id limit is {MAX_SETS}"
            )
        capacity = min(max(self._alive_mask.size * 2, needed, 256), MAX_SETS)
        alive = np.empty(capacity, dtype=bool)
        alive[: self._num_sets] = self._alive_mask[: self._num_sets]
        self._alive_mask = alive
        indptr = np.zeros(capacity + 1, dtype=np.int64)
        indptr[: self._num_sets + 1] = self._indptr[: self._num_sets + 1]
        self._indptr = indptr
        self._generation += 1

    def _refresh_index(self) -> None:
        """Amortized index maintenance after an append batch."""
        pending_members = self._members_used - self._indexed_members
        if pending_members == 0:
            return
        if (
            self._indexed_members < _MIN_INDEXED_MEMBERS
            or pending_members * _REBUILD_FRACTION >= self._indexed_members
        ):
            self._rebuild_main_index()
        else:
            self._rebuild_pending_index()

    def _rebuild_main_index(self) -> None:
        lengths = np.diff(self._indptr[: self._num_sets + 1])
        self._idx_indptr, self._idx_sets = _build_csr_index(
            self._members[: self._members_used], 0, lengths, self.num_nodes
        )
        self._indexed_sets = self._num_sets
        self._indexed_members = self._members_used
        self._pend_nodes = np.empty(0, dtype=MEMBER_DTYPE)
        self._pend_sets = np.empty(0, dtype=SET_ID_DTYPE)

    def _rebuild_pending_index(self) -> None:
        """Sorted-pairs index over the pending region: O(pending log
        pending) work and memory, independent of ``num_nodes``."""
        lo = self._indexed_sets
        lengths = np.diff(self._indptr[lo : self._num_sets + 1])
        region = self._members[self._indexed_members : self._members_used]
        owners = np.repeat(
            np.arange(lo, self._num_sets, dtype=SET_ID_DTYPE), lengths
        )
        order = np.argsort(region, kind="stable")
        self._pend_nodes = region[order]
        self._pend_sets = owners[order]

    def _ids_containing(self, node: int) -> np.ndarray:
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range")
        main = self._idx_sets[self._idx_indptr[node] : self._idx_indptr[node + 1]]
        if self._indexed_sets == self._num_sets:
            return main
        lo, hi = np.searchsorted(self._pend_nodes, [node, node + 1])
        mini = self._pend_sets[lo:hi]
        if main.size == 0:
            return mini
        if mini.size == 0:
            return main
        return np.concatenate((main, mini))

    def _ids_containing_many(self, nodes: np.ndarray) -> np.ndarray:
        starts = self._idx_indptr[nodes]
        lengths = self._idx_indptr[nodes + 1] - starts
        parts = [self._idx_sets[_gather_slices(starts, lengths)]]
        if self._indexed_sets != self._num_sets:
            plos = np.searchsorted(self._pend_nodes, nodes)
            phis = np.searchsorted(self._pend_nodes, nodes + 1)
            parts.append(self._pend_sets[_gather_slices(plos, phis - plos)])
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def _gather_members(self, set_ids: np.ndarray) -> np.ndarray:
        starts = self._indptr[set_ids]
        lengths = self._indptr[np.asarray(set_ids, dtype=np.int64) + 1] - starts
        return self._members[_gather_slices(starts, lengths)]
