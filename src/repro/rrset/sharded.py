"""Per-advertiser sharded RR-set sampling engine.

TIRM (Algorithms 2–4, §5.2) keeps one independent RR-set collection and
sampler per advertiser.  :class:`ShardedSamplingEngine` makes that
structure explicit: it owns one :class:`~repro.rrset.pool.RRSetPool`
*shard* per advertiser and serves batched sampling requests — the
initial pilots for all ``h`` ads, and every Algorithm-4 ``θ_i`` top-up —
either serially in-process or concurrently across a
``concurrent.futures`` process pool.

Counter-based streams (``rng="philox"``, the default)
-----------------------------------------------------

Every RR set is addressed by ``(global_seed, ad, set_index)``: set
indices are grouped into fixed-size *chunks*, and chunk ``c`` of ad
``i`` owns the private generator
``Philox(SeedSequence(entropy, spawn_key=(i, c)))`` (see
:class:`~repro.rrset.sampler.StreamPlan`).  A request — *including a
single ad's θ top-up* — therefore decomposes into independent
``(ad, chunk)`` tasks that are fanned across the process pool and
spliced back in set-index order.  Because every chunk is a pure function
of its address, the shards are **bit-identical for serial, 1-worker and
N-worker execution**, no matter how requests are split across calls.
No RNG state round-trips through workers; each task ships only
``(engine id, ad, chunk, transport)``.

Worker transport (``transport="shm"``, the default where available)
-------------------------------------------------------------------

* ``"shm"``: workers publish each chunk's packed block into a
  ``multiprocessing.shared_memory`` segment — ``int64`` lengths followed
  by ``int32`` members — and return only a small descriptor
  ``(ad, chunk, segment_name, num_sets, num_members)``.  The parent
  attaches the segment, splices the requested set subrange straight into
  the ad's shard through the single-copy
  :meth:`~repro.rrset.pool.RRSetPool.add_flat_from_buffer` append path
  (zero-copy views over the segment; exactly one copy into the pool),
  and retires the segment — exactly one ``unlink`` per segment, on
  success and error paths alike.
* ``"pickle"``: the historical transport — workers return the packed
  ``(members, lengths)`` block itself over the result pipe.

Transport is **not** part of the determinism contract: both splice the
same bytes, and the invariance tests assert it.

Start methods
-------------

Under ``fork`` (preferred where available) workers inherit the payload
— graph CSR, per-ad probability rows, stream entropies — by
copy-on-write from a module registry.  Under ``spawn`` the parent
publishes the same payload once into a shared-memory *arena* and the
executor initializer attaches it in each worker, rebuilding zero-copy
views — so spawn platforms (macOS/Windows) run at full parallelism
instead of degrading to serial.  Only when neither fork nor a
shared-memory-capable spawn is usable does ``engine="process"`` degrade
to serial sampling, with a warning per engine.

Prefetch pipeline
-----------------

:meth:`ShardedSamplingEngine.prefetch` submits upcoming ``(ad, chunk)``
tasks without blocking; :meth:`sample`/:meth:`ensure` harvest matching
in-flight futures before submitting the remainder, so sampling can
overlap the caller's own work (TIRM overlaps its greedy selection).
Speculation is legal because chunks are pure functions of their
``(entropy, ad, chunk)`` address: a speculative chunk is byte-identical
whether or not it ends up needed, and one that is never consumed is
simply discarded (and its segment unlinked) at close.

Shard cache (``cache=...`` / ``REPRO_CACHE``)
---------------------------------------------

With a cache directory configured, the engine is *read-through* over
the content-addressed shard store (:mod:`repro.store`): every sampling
path — :meth:`sample`, :meth:`ensure`, :meth:`prefetch` — consults the
cache **before** submitting compute, splices verified hits through the
same single-copy ``add_flat_from_buffer`` path the shm transport uses,
and stores freshly computed blocks for the next run.  Keys address what
determines the bytes (graph/probs content, stream entropy, chunk size,
sampler mode) and exclude the byte-identical substrate knobs (engine,
workers, backend, transport, start method) — so a warm run performs
**zero** sampling-backend invocations (``backend_invocations`` counts
them) while remaining byte-identical to a cold one.  Every hit is
integrity-checked against its stored dsan digest on load; a poisoned
entry is quarantined with a warning and the block recomputed, never
spliced.  Like prefetch and the transport, the cache is **not** part of
the determinism contract.

Legacy streams (``rng="legacy"``)
---------------------------------

The historical per-ad stateful streams (Mersenne scalar / PCG64
blocked), kept for bit-exact reproduction of the seed implementation.
They are strictly sequential — set ``k`` cannot be drawn without first
drawing sets ``0..k-1`` — so legacy requests are always served serially
in ad order, exactly like the pre-engine ``TIRMAllocator`` loop, even
under ``engine="process"`` (a warning says so).  Cached legacy entries
carry the post-request stream state, so a hit both splices the block
and advances the restored stream exactly as sampling would have; a
request sequence that diverges from the cached one stops consulting
the cache for that ad (the stream history no longer matches).
"""

from __future__ import annotations

import gc
import itertools
import multiprocessing
import os
import warnings
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DirectedGraph
from repro.rrset.backends import resolve_backend
from repro.rrset.dsan import DsanRecorder, dsan_enabled
from repro.rrset.pool import MEMBER_DTYPE, RRSetPool
from repro.rrset.sampler import (
    DEFAULT_CHUNK_SIZE,
    RRSetSampler,
    StreamPlan,
    _slice_flat,
)
from repro.utils.rng import seed_entropy, spawn_generators

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

ENGINE_MODES = ("serial", "process")
SAMPLER_MODES = ("scalar", "blocked")
RNG_MODES = ("philox", "legacy")
TRANSPORT_MODES = ("auto", "pickle", "shm")
START_METHODS = ("auto", "fork", "spawn")

_LENGTH_DTYPE = np.int64
_LENGTH_ITEMSIZE = np.dtype(_LENGTH_DTYPE).itemsize
_MEMBER_ITEMSIZE = np.dtype(MEMBER_DTYPE).itemsize

#: Engine-id allocator: payloads of concurrently live engines must not
#: collide in the worker-side registries.
_ENGINE_IDS = itertools.count()

#: Worker-visible payload registry.  Maps engine id -> (graph, per-ad
#: probability rows, per-ad entropies, chunk size, resolved sampling
#: backend).  Under fork the parent registers before creating the
#: executor and children inherit the entry copy-on-write; under spawn
#: the executor initializer fills the (fresh) worker-side registry from
#: the payload arena (:func:`_spawn_worker_init`).
_FORK_PAYLOADS: dict[int, tuple] = {}

#: Worker-side sampler cache, keyed by (engine id, ad).  Samplers are
#: rebuilt lazily per worker so the O(m) scalar adjacency flattening is
#: paid at most once per (worker, ad); chunk streams come from the
#: StreamPlan, so the cache seed is irrelevant.
_WORKER_SAMPLERS: dict[tuple[int, int], RRSetSampler] = {}


def _publish_block(members: np.ndarray, lengths: np.ndarray) -> tuple[str, int, int]:
    """Worker side of the shm transport: pack one chunk block into a
    fresh shared-memory segment (lengths, then members) and return its
    ``(name, num_sets, num_members)`` descriptor.  The worker closes its
    mapping immediately; the parent owns the segment's single unlink."""
    lengths = np.ascontiguousarray(lengths, dtype=_LENGTH_DTYPE)
    members = np.ascontiguousarray(members, dtype=MEMBER_DTYPE)
    segment = shared_memory.SharedMemory(  # reprolint: disable=R104 -- ownership transfers: the parent unlinks at splice (_splice_segment) or drain (_drain_futures/_release_engine_resources); the error path below unlinks locally
        create=True, size=max(lengths.nbytes + members.nbytes, 1)
    )
    try:
        np.frombuffer(segment.buf, dtype=_LENGTH_DTYPE, count=lengths.size)[:] = lengths
        np.frombuffer(
            segment.buf, dtype=MEMBER_DTYPE, count=members.size,
            offset=lengths.nbytes,
        )[:] = members
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    name = segment.name
    segment.close()
    return name, int(lengths.size), int(members.size)


def _unlink_segment(name: str) -> None:
    """Best-effort unlink of a segment by name (idempotent: a segment
    already unlinked — or never created — is not an error)."""
    if shared_memory is None:
        return
    try:
        segment = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return
    segment.close()
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):
        pass


def _worker_sample_chunk(
    engine_id: int, ad: int, mode: str, chunk_index: int,
    transport: str = "pickle",
):
    """Run one chunk task in a worker: rebuild the ad's plan from the
    engine payload and return the chunk's full packed block — inline
    under the pickle transport, as a shared-memory descriptor under shm.
    The parent slices out the requested subrange and caches partial tail
    blocks, so a chunk is computed at most once per engine lifetime."""
    key = (engine_id, ad)
    graph, probs_per_ad, entropies, chunk_size, backend = _FORK_PAYLOADS[engine_id]
    sampler = _WORKER_SAMPLERS.get(key)
    if sampler is None:
        sampler = RRSetSampler(graph, probs_per_ad[ad], seed=0, backend=backend)
        _WORKER_SAMPLERS[key] = sampler
    plan = StreamPlan(entropies[ad], ad, chunk_size)
    members, lengths = sampler.sample_chunk_block(plan, chunk_index, mode=mode)
    if transport == "shm":
        name, num_sets, num_members = _publish_block(members, lengths)
        return ad, chunk_index, name, num_sets, num_members
    return ad, chunk_index, members, lengths


def _payload_parts(
    graph: DirectedGraph, samplers: Sequence,
) -> list[tuple[str, np.ndarray]]:
    """The engine payload as named contiguous arrays — the graph in-CSR
    plus one canonical probability row per advertiser.  Single source of
    truth for every payload shipment: the spawn arena
    (:meth:`ShardedSamplingEngine._spawn_initargs`) and the distributed
    tier's session PAYLOAD frame (:mod:`repro.dist`) pack exactly this
    list, and workers on either substrate rebuild identical views."""
    parts: list[tuple[str, np.ndarray]] = [
        ("in_indptr", np.ascontiguousarray(graph.in_indptr)),
        ("in_sources", np.ascontiguousarray(graph.in_sources)),
        ("in_edge_ids", np.ascontiguousarray(graph.in_edge_ids)),
    ]
    for ad, sampler in enumerate(samplers):
        parts.append(
            (f"probs_{ad}", np.ascontiguousarray(sampler.edge_probabilities))
        )
    return parts


def _payload_layout(
    parts: list[tuple[str, np.ndarray]],
) -> tuple[list[tuple[str, str, int, int]], int]:
    """8-byte-aligned ``(key, dtype, count, offset)`` layout for a flat
    payload buffer holding ``parts``, plus the buffer's total size."""
    layout: list[tuple[str, str, int, int]] = []
    offset = 0
    for key, array in parts:
        offset = (offset + 7) & ~7  # 8-byte align every block
        layout.append((key, array.dtype.str, int(array.size), offset))
        offset += array.nbytes
    return layout, max(offset, 1)


def _graph_from_arrays(
    num_nodes: int, num_edges: int, arrays: Mapping[str, np.ndarray],
) -> DirectedGraph:
    """Rebuild a sampling-sufficient graph from payload views.  The
    sampling paths only touch the in-CSR (plus the two dims), so the
    payload ships exactly that; bypass the sorting/validating
    constructor and bind the views directly to the slots."""
    graph = object.__new__(DirectedGraph)
    graph.num_nodes = int(num_nodes)
    graph.num_edges = int(num_edges)
    graph.in_indptr = arrays["in_indptr"]
    graph.in_sources = arrays["in_sources"]
    graph.in_edge_ids = arrays["in_edge_ids"]
    return graph


def _spawn_worker_init(
    engine_id: int,
    arena_name: str,
    layout: list[tuple[str, str, int, int]],
    graph_dims: tuple[int, int, int],
    entropies: tuple[int, ...],
    chunk_size: int,
    backend_spec,
) -> None:
    """Executor initializer under the spawn start method: attach the
    parent's payload arena and rebuild the payload registry entry from
    zero-copy views over it — spawned workers never pickle the graph.

    ``layout`` lists ``(key, dtype, count, offset)`` per array;
    ``backend_spec`` is a backend name (re-resolved here, since resolved
    backends may hold unpicklable compiled kernels) or, for custom
    backends, a picklable instance.
    """
    import atexit

    arena = shared_memory.SharedMemory(name=arena_name)
    arrays = {
        key: np.frombuffer(arena.buf, dtype=np.dtype(dtype), count=count, offset=offset)
        for key, dtype, count, offset in layout
    }
    num_nodes, num_edges, h = graph_dims
    graph = _graph_from_arrays(num_nodes, num_edges, arrays)
    probs_per_ad = [arrays[f"probs_{ad}"] for ad in range(h)]
    backend = (
        resolve_backend(backend_spec) if isinstance(backend_spec, str) else backend_spec
    )
    _FORK_PAYLOADS[engine_id] = (graph, probs_per_ad, entropies, chunk_size, backend)
    atexit.register(_spawn_worker_cleanup, engine_id, arena)


def _spawn_worker_cleanup(engine_id: int, arena) -> None:
    """Worker atexit: drop every payload view, then close the arena
    mapping so the worker exits without buffer-export noise.  The parent
    owns the arena's unlink."""
    _FORK_PAYLOADS.pop(engine_id, None)
    for key in [k for k in _WORKER_SAMPLERS if k[0] == engine_id]:
        del _WORKER_SAMPLERS[key]
    gc.collect()
    try:
        arena.close()
    except BufferError:  # pragma: no cover - a view outlived the caches
        # Detach forcibly: the OS reclaims the mapping at process exit
        # either way, and silencing here keeps interpreter shutdown
        # free of "exception ignored in __del__" noise.
        arena._buf = None
        arena._mmap = None


def _release_engine_resources(resources: dict) -> None:
    """Teardown shared by ``close()`` and the GC finalizer: cancel
    in-flight prefetch futures, shut the worker pool down, retire any
    unharvested shared-memory segments and the payload arena, and drop
    the payload registry entry.  Runs at most once per engine
    (``weakref.finalize`` guarantees it), in whichever comes first —
    explicit close, context-manager exit, or garbage collection.  Every
    step is idempotent and exception-safe: each segment is unlinked
    exactly once no matter how teardown is reached."""
    inflight = resources.get("inflight")
    pending: list[Future] = []
    if inflight:
        pending = list(inflight.values())
        inflight.clear()
        for future in pending:
            future.cancel()
    executor = resources.get("executor")
    if executor is not None:
        resources["executor"] = None
        executor.shutdown(wait=True)
    # Futures that could not be cancelled have completed by now (the
    # shutdown waited); their published segments were never consumed by
    # a splice, so retire them here.
    if resources.get("transport") == "shm":
        for future in pending:
            if future.cancelled():
                continue
            try:
                result = future.result()
            except BaseException:
                continue  # worker failed: _publish_block cleaned up
            _unlink_segment(result[2])
    arena = resources.get("arena")
    if arena is not None:
        resources["arena"] = None
        try:
            arena.close()
        finally:
            try:
                arena.unlink()
            except (FileNotFoundError, OSError):
                pass
    payload_key = resources.get("payload_key")
    if payload_key is not None:
        resources["payload_key"] = None
        _FORK_PAYLOADS.pop(payload_key, None)
    # Distributed session (repro.dist): release the payload held by the
    # coordinator — and the coordinator itself when this engine built it
    # from a spec (a borrowed coordinator belongs to the caller).
    dist = resources.get("dist")
    if dist is not None:
        resources["dist"] = None
        coordinator, session_id, owned = dist
        try:
            coordinator.release_session(session_id)
        except Exception:  # pragma: no cover - teardown must not raise
            pass
        if owned:
            try:
                coordinator.close()
            except Exception:  # pragma: no cover - teardown must not raise
                pass
    # Shard cache last: an engine-owned cache is closed (flush + catalog
    # close); a shared one (TIRM owns it) is only flushed, so its batched
    # catalog rows land before the owner reads or closes it.
    cache = resources.get("cache")
    if cache is not None:
        resources["cache"] = None
        try:
            if resources.get("cache_owned"):
                cache.close()
            else:
                cache.flush()
        except Exception:  # pragma: no cover - interpreter-shutdown race
            pass


class ShardedSamplingEngine:
    """One RR-set pool shard per advertiser, with chunk-parallel sampling.

    Parameters
    ----------
    graph:
        The social graph shared by every shard.
    probs_per_ad:
        One per-canonical-edge probability array per advertiser.
    seeds:
        With ``rng="philox"``: a single seed-like whose
        :func:`~repro.utils.rng.seed_entropy` becomes the global stream
        root (per-ad streams are separated by the ``spawn_key``), or a
        sequence of ``h`` seed-likes for explicit per-ad roots.  With
        ``rng="legacy"``: a sequence of ``h`` per-ad seeds, or a single
        seed split into ``h`` child streams — exactly the historical
        behavior.
    mode:
        ``"blocked"`` (vectorized batched BFS) or ``"scalar"`` (the
        per-set Python BFS) — the same knob as
        ``TIRMAllocator(sampler_mode=...)``.
    engine:
        ``"serial"`` samples in-process; ``"process"`` fans chunk tasks
        across a process pool.  Both produce bit-identical shards for
        the same ``(seeds, chunk_size)``.
    max_workers:
        Process-pool width (default: ``os.cpu_count()``).
    rng:
        ``"philox"`` (counter-based, chunk-parallel; default) or
        ``"legacy"`` (the historical stateful streams, always serial).
    chunk_size:
        Set-index chunk width of the counter-based streams.  Part of the
        determinism contract — resampling with a different chunk size
        yields different (equally valid) sets.
    backend:
        Blocked-BFS backend (:mod:`repro.rrset.backends`): ``"numpy"``
        (reference, default), ``"numba"`` (JIT kernel), ``"auto"``, or
        a :class:`~repro.rrset.backends.SamplingBackend` instance.
        Resolved once here; workers inherit (fork) or rebuild (spawn)
        the resolved backend with the payload.  **Not** part of the
        determinism contract — every backend yields byte-identical
        shards.
    transport:
        Worker-result transport for ``engine="process"``: ``"shm"``
        (shared-memory descriptors, zero-copy parent splice), ``"pickle"``
        (packed blocks over the result pipe), or ``"auto"`` (default:
        shm where :mod:`multiprocessing.shared_memory` is available,
        else pickle).  **Not** part of the determinism contract — both
        transports splice byte-identical pools.  An explicit ``"shm"``
        on a platform without shared memory raises
        :class:`~repro.errors.ConfigurationError`.
    start_method:
        Process start method for the worker pool: ``"fork"``,
        ``"spawn"``, or ``"auto"`` (default: fork where available, else
        spawn).  Spawn workers receive the payload through a
        shared-memory arena, so they run at full parallelism; if neither
        fork nor a shared-memory-capable spawn is usable, the engine
        degrades to serial sampling with a warning.  **Not** part of the
        determinism contract.
    dsan:
        Runtime determinism sanitizer (:mod:`repro.rrset.dsan`):
        ``True`` keeps a blake2 digest per ``(ad, chunk)`` over every
        block spliced into the shards, readable via
        :meth:`dsan_digests` / :meth:`dsan_root`.  ``None`` (default)
        defers to the ``REPRO_DSAN`` environment variable.  Recording
        is pure observation — a sanitized run is byte-identical to an
        unsanitized one.
    dsan_expected:
        Optional reference digest map (a prior run's
        :meth:`dsan_digests`).  Implies ``dsan``; every recorded chunk
        is checked inline and the first divergence raises
        :class:`~repro.errors.DeterminismError` naming its
        ``(ad, chunk)``.
    cache:
        Shard cache knob (:mod:`repro.store`): a directory path opens a
        cache the engine owns (and closes), a ready
        :class:`~repro.store.ShardCache` is shared (the engine only
        flushes it), and ``None`` (default) defers to the
        ``REPRO_CACHE`` environment variable.  With a cache, every
        sampling path checks the store before computing and stores what
        it computes; ``backend_invocations`` counts actual compute.
        **Not** part of the determinism contract — hits are verified
        against their stored digests, so cached and uncached runs are
        byte-identical (see the module notes above).

    Examples
    --------
    Two advertisers, ten RR-sets each, served serially in-process::

        >>> from repro.graph.generators import erdos_renyi
        >>> from repro.graph.probabilities import constant_probabilities
        >>> from repro.rrset import ShardedSamplingEngine
        >>> graph = erdos_renyi(40, 0.1, seed=2)
        >>> probs = constant_probabilities(graph, 0.1)
        >>> with ShardedSamplingEngine(
        ...     graph, [probs, probs], seeds=11, chunk_size=8
        ... ) as engine:
        ...     engine.ensure({0: 10, 1: 10})   # grow shards to 10 sets
        ...     engine.total_sets()
        20
    """

    def __init__(
        self,
        graph: DirectedGraph,
        probs_per_ad: Sequence,
        *,
        seeds=None,
        mode: str = "blocked",
        engine: str = "serial",
        max_workers: int | None = None,
        rng: str = "philox",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        backend="numpy",
        transport: str = "auto",
        start_method: str = "auto",
        dsan: bool | None = None,
        dsan_expected: Mapping | None = None,
        cache=None,
        retain_blocks: bool = False,
    ) -> None:
        if mode not in SAMPLER_MODES:
            raise ConfigurationError(
                f"mode must be one of {SAMPLER_MODES}, got {mode!r}"
            )
        if engine not in ENGINE_MODES:
            raise ConfigurationError(
                f"engine must be one of {ENGINE_MODES}, got {engine!r}"
            )
        if rng not in RNG_MODES:
            raise ConfigurationError(f"rng must be one of {RNG_MODES}, got {rng!r}")
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if start_method not in START_METHODS:
            raise ConfigurationError(
                f"start_method must be one of {START_METHODS}, got {start_method!r}"
            )
        probs_per_ad = list(probs_per_ad)
        if not probs_per_ad:
            raise ConfigurationError("need at least one advertiser")
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        self.graph = graph
        self.mode = mode
        self.engine = engine
        self.rng = rng
        self.chunk_size = int(chunk_size)
        # Resolve once, up front: "auto" picks its substrate here (and
        # warns here if it degrades), workers inherit the *resolved*
        # backend via the payload, and provenance records its name
        # (`backend_name`, mirroring RRSetSampler.backend/.backend_name).
        self.backend = resolve_backend(backend)
        # Transport and start method resolve up front too: an explicit
        # 'shm' without platform support fails cleanly here, and
        # stats/provenance record the resolved names.  Neither is part
        # of the determinism contract.
        self.transport = self.resolve_transport(transport)
        self._start_method = (
            self._resolve_start_method(start_method) if engine == "process" else None
        )
        h = len(probs_per_ad)
        if isinstance(seeds, (list, tuple)) and len(seeds) != h:
            raise ConfigurationError(
                f"got {len(seeds)} per-ad seeds for {h} advertisers"
            )
        if rng == "philox":
            if isinstance(seeds, (list, tuple)):
                entropies = [seed_entropy(s) for s in seeds]
            else:
                root = seed_entropy(seeds)
                entropies = [root] * h
            self._entropies: list[int] | None = entropies
            self._plans = [
                StreamPlan(entropies[ad], ad, self.chunk_size) for ad in range(h)
            ]
            # Chunk streams come from the plans; the sampler seed is inert.
            self._samplers = [
                RRSetSampler(graph, probs_per_ad[ad], seed=0, backend=self.backend)
                for ad in range(h)
            ]
        else:
            if isinstance(seeds, (list, tuple)):
                per_ad_seeds = list(seeds)
            else:
                per_ad_seeds = spawn_generators(seeds, h)
            self._entropies = None
            self._plans = None
            self._samplers = [
                RRSetSampler(
                    graph, probs_per_ad[ad], seed=per_ad_seeds[ad],
                    backend=self.backend,
                )
                for ad in range(h)
            ]
        # Captured before any sampling: reset_for_reuse rewinds the
        # stateful legacy streams to these states so a reused engine
        # replays the exact per-ad sequences a fresh engine would.
        # (Philox streams need no capture — they are stateless functions
        # of (entropy, ad, chunk); only num_sampled is rewound.)
        self._legacy_initial_states = (
            [sampler.legacy_state() for sampler in self._samplers]
            if rng == "legacy"
            else None
        )
        self._shards = [RRSetPool(graph.num_nodes) for _ in range(h)]
        # Per-ad cache of the last *partial* tail chunk's full block:
        # chunks are pure, so a θ continuation that re-enters the chunk
        # can reuse the block instead of resampling it.  Bounded by one
        # block per ad; with it, every chunk is computed exactly once
        # per engine lifetime.  ad -> (chunk_index, (members, lengths)).
        self._tail_blocks: dict[int, tuple[int, tuple[np.ndarray, np.ndarray]]] = {}
        # In-memory chunk-block memo for pooled (resident) engines: with
        # ``retain_blocks`` every full chunk block ever spliced is kept,
        # keyed by its pure ``(ad, chunk)`` stream address, and consulted
        # before the shard cache and the backend.  This is what makes a
        # warm-pool resubmit perform *zero* backend invocations even
        # without a disk cache: :meth:`reset_for_reuse` empties the
        # shards but keeps the memo, because chunk addresses — unlike
        # shard contents — are independent of run history.  Off by
        # default (batch engines die after one run; the memo would only
        # duplicate the shards' memory).
        self._retain_blocks = bool(retain_blocks)
        self._block_memo: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        self._max_workers = max_workers
        self._engine_id = next(_ENGINE_IDS)
        self._warned_degraded = False
        # Determinism sanitizer: an explicit expected map implies dsan
        # (there is nothing to check the map against otherwise).
        self._dsan_expected = dsan_expected
        self._dsan: DsanRecorder | None = (
            DsanRecorder(
                expected=dsan_expected, label=f"engine#{self._engine_id}"
            )
            if dsan_enabled(dsan) or dsan_expected is not None
            else None
        )
        # Legacy streams have no chunk addresses; dsan keys them by the
        # per-ad request ordinal instead (see repro.rrset.dsan).
        self._legacy_ordinals: dict[int, int] = {}
        #: Sampling-backend invocations this engine actually performed
        #: (serial chunk computes, worker submits, legacy draws).  The
        #: warm-start headline: a fully cached run keeps this at zero.
        self.backend_invocations = 0
        # Read-through shard cache.  Imported lazily: repro.store imports
        # repro.rrset for the block format and digests, so a module-level
        # import here would be circular.
        from repro.store.cache import resolve_cache

        self._cache, self._cache_owned = resolve_cache(cache)
        self._shard_keys: list[str] | None = None
        self._cache_meta: list[dict] | None = None
        # Ads whose legacy request sequence diverged from the cached one
        # (membership tests only — never iterated).
        self._legacy_diverged: set[int] = set()
        if self._cache is not None:
            self._init_shard_keys()
        # Speculative prefetch ledger: (ad, chunk) -> in-flight future.
        # Shared with the teardown resources so close() can cancel and
        # drain it even from the GC finalizer (which cannot see self).
        self._inflight: dict[tuple[int, int], Future] = {}
        self._arena_layout: list[tuple[str, str, int, int]] | None = None
        self._resources: dict = {
            "executor": None,
            "payload_key": None,
            "inflight": self._inflight,
            "arena": None,
            "transport": self.transport,
            "cache": self._cache,
            "cache_owned": self._cache_owned,
        }
        if engine == "process" and rng == "philox" and self._start_method != "spawn":
            _FORK_PAYLOADS[self._engine_id] = (
                graph, probs_per_ad, entropies, self.chunk_size, self.backend,
            )
            self._resources["payload_key"] = self._engine_id
        try:
            # GC-safe teardown: __del__ runs in arbitrary GC order (flaky
            # under pytest-xdist), finalize does not.  close() triggers the
            # same callback, so teardown is idempotent by construction.
            self._finalizer = weakref.finalize(
                self, _release_engine_resources, self._resources
            )
            if engine == "process" and rng == "legacy":
                warnings.warn(
                    f"ShardedSamplingEngine #{self._engine_id}: rng='legacy' streams "
                    "are stateful and strictly sequential, so engine='process' will "
                    "sample serially; use rng='philox' for chunk-parallel sampling",
                    RuntimeWarning,
                    stacklevel=2,
                )
        except BaseException:
            # Construction failed after the fork payload was registered
            # (e.g. an error-filtered warning): a half-built engine has no
            # finalizer yet, so release its resources here instead of
            # leaking the payload (and any executor) forever.
            _release_engine_resources(self._resources)
            raise

    def _init_shard_keys(self) -> None:
        """Content addresses for every ad's stream (key schema:
        :mod:`repro.store.keys`).  Keys pin what determines the bytes —
        graph content, edge probabilities, stream entropy (philox) or
        initial stream state (legacy), chunk size, sampler mode — and
        exclude the byte-identical substrate (engine / backend /
        transport / start method / workers)."""
        from repro.store.keys import legacy_shard_key, philox_shard_key, state_hash
        from repro.utils.hashing import array_digest, graph_digest

        graph_hash = graph_digest(self.graph)
        keys: list[str] = []
        meta: list[dict] = []
        for ad, sampler in enumerate(self._samplers):
            probs_hash = array_digest(sampler.edge_probabilities, label="probs")
            if self.rng == "philox":
                key = philox_shard_key(
                    graph_hash=graph_hash, probs_hash=probs_hash,
                    entropy=self._entropies[ad], ad=ad,
                    chunk_size=self.chunk_size, mode=self.mode,
                )
                entropy = str(self._entropies[ad])
            else:
                # The legacy key pins the *initial* stream state: entries
                # are keyed by request ordinal and carry the post-request
                # state, so hits replay the exact sampling sequence.
                key = legacy_shard_key(
                    graph_hash=graph_hash, probs_hash=probs_hash,
                    state_hash=state_hash(sampler.legacy_state()),
                    ad=ad, mode=self.mode,
                )
                entropy = None
            keys.append(key)
            meta.append({
                "ad": ad,
                "rng": self.rng,
                "mode": self.mode,
                "chunk_size": self.chunk_size,
                "entropy": entropy,
                "graph_hash": graph_hash,
            })
        self._shard_keys = keys
        self._cache_meta = meta

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_ads(self) -> int:
        """Number of shards ``h``."""
        return len(self._shards)

    @property
    def backend_name(self) -> str:
        """The resolved backend's name (stats/provenance string; the
        backend *instance* is ``self.backend``)."""
        return self.backend.name

    @property
    def start_method(self) -> str | None:
        """The resolved worker start method (``"fork"`` or ``"spawn"``),
        or ``None`` for serial engines and degraded process engines."""
        return self._start_method

    @property
    def dsan(self) -> bool:
        """Whether the determinism sanitizer is recording on this engine."""
        return self._dsan is not None

    def dsan_digests(self) -> dict[tuple[int, int], str]:
        """Copy of the sanitizer's digest map (``{}`` when dsan is off).

        Keys are ``(ad, chunk_index)`` stream addresses under
        ``rng="philox"`` and ``(ad, request_ordinal)`` under
        ``rng="legacy"``; values are blake2 hexdigests of the full
        packed chunk block.  Two engines asked to reach the same targets
        must produce equal maps (:func:`repro.rrset.dsan.compare_digests`
        raises at the first divergent chunk when they do not).
        """
        return {} if self._dsan is None else dict(self._dsan.digests)

    def dsan_root(self) -> str | None:
        """One digest over the whole digest map — the compact run
        fingerprint recorded in TIRM stats/provenance (``None`` when
        dsan is off)."""
        return None if self._dsan is None else self._dsan.root_digest()

    @property
    def cache(self):
        """The engine's shard cache (:class:`repro.store.ShardCache`),
        or ``None`` when caching is off."""
        return self._cache

    def cache_stats(self) -> dict | None:
        """Copy of the cache's hit/miss/store/corrupt counters plus its
        directory under ``"path"`` (``None`` when caching is off)."""
        if self._cache is None:
            return None
        stats = dict(self._cache.stats)
        stats["path"] = self._cache.directory
        return stats

    def shard_cache_refs(self) -> list[tuple[str, int]]:
        """The cache blocks this engine's shards were (or could have
        been) served from: one ``(shard_key, max_index)`` pair per
        non-empty ad.  TIRM registers these against each checkpoint so
        ``repro gc`` keeps the blocks a warm resume would re-read.
        Empty without a cache."""
        if self._shard_keys is None:
            return []
        refs: list[tuple[str, int]] = []
        for ad, key in enumerate(self._shard_keys):
            if self.rng == "philox":
                total = self._shards[ad].num_total
                if total:
                    refs.append((key, (total - 1) // self.chunk_size))
            else:
                ordinal = self._legacy_ordinals.get(ad, 0)
                if ordinal:
                    refs.append((key, ordinal - 1))
        return refs

    def shard(self, ad: int) -> RRSetPool:
        """The advertiser's RR-set pool shard."""
        return self._shards[ad]

    def sampler(self, ad: int) -> RRSetSampler:
        """The advertiser's sampler (the parent-side BFS core)."""
        return self._samplers[ad]

    def plan(self, ad: int) -> StreamPlan | None:
        """The advertiser's counter-based stream plan (``None`` under
        ``rng="legacy"``)."""
        return None if self._plans is None else self._plans[ad]

    def stream_entropy(self, ad: int) -> int | None:
        """The ad's stream entropy root (``None`` under ``rng="legacy"``)."""
        return None if self._entropies is None else self._entropies[ad]

    def total_sets(self) -> int:
        """Σ over shards of sets ever sampled."""
        return int(sum(s.num_total for s in self._shards))

    def shared_memory_bytes(self) -> int:
        """Bytes the engine itself pins in shared memory: the spawn
        payload arena, while one is live.  Worker-published result
        segments are transient (created per chunk, retired at splice)
        and not counted."""
        arena = self._resources.get("arena")
        return int(arena.size) if arena is not None else 0

    def memory_bytes(self) -> int:
        """Σ over shards of bytes held (the Table-4 figure), plus any
        shared-memory bytes the engine pins itself
        (:meth:`shared_memory_bytes`) and the resident chunk-block memo
        of a ``retain_blocks`` engine — honest accounting for the
        externally-backed payload arena and the warm-pool residency."""
        memo_bytes = sum(
            int(members.nbytes) + int(lengths.nbytes)
            for members, lengths in self._block_memo.values()
        )
        return (
            int(sum(s.memory_bytes() for s in self._shards))
            + self.shared_memory_bytes()
            + int(memo_bytes)
        )

    # ------------------------------------------------------------------
    # Warm reuse
    # ------------------------------------------------------------------
    def reset_for_reuse(self) -> None:
        """Rewind the engine to its just-constructed state so a second
        run over it is byte-identical to a fresh-engine run.

        This is the leasing contract of the service tier's engine pool:
        everything *run-scoped* is cleared — shards (fresh empty pools:
        ``θ = num_total`` must restart at zero), per-ad tail-block
        caches, in-flight prefetch futures (cancelled or drained, their
        unconsumed segments unlinked), dsan digests (a fresh recorder
        with the original ``expected`` map), legacy request ordinals and
        divergence marks (the stateful legacy streams are rewound to
        their captured initial states), sampler positions, and the
        ``backend_invocations`` counter — while everything *engine-
        scoped* stays warm: the worker pool and its JIT-compiled
        backend state, the spawn payload arena, the shard cache handle
        and content keys, and the ``retain_blocks`` chunk-block memo
        (chunks are pure functions of ``(entropy, ad, chunk)``, which
        reuse does not change).

        Without this, a second allocation against a reused engine
        inherits the previous run's tail blocks and dsan state — stale
        θ accounting and false divergence reports.  Raises
        :class:`~repro.errors.ConfigurationError` on a closed engine.
        """
        if not self._finalizer.alive:
            raise ConfigurationError(
                f"cannot reset ShardedSamplingEngine #{self._engine_id}: "
                "the engine is closed"
            )
        # Drain the prefetch ledger in place — the dict object is shared
        # with the teardown resources, so it must be cleared, not
        # replaced.
        self._drain_futures(self._inflight.values())
        self._inflight.clear()
        self._shards = [RRSetPool(self.graph.num_nodes) for _ in self._shards]
        self._tail_blocks.clear()
        self._legacy_ordinals.clear()
        self._legacy_diverged.clear()
        if self._dsan is not None:
            self._dsan = DsanRecorder(
                expected=self._dsan_expected, label=f"engine#{self._engine_id}"
            )
        self.backend_invocations = 0
        if self.rng == "legacy":
            for sampler, state in zip(
                self._samplers, self._legacy_initial_states
            ):
                sampler.set_legacy_state(state)
        else:
            for sampler in self._samplers:
                sampler.num_sampled = 0

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, requests: Mapping[int, int]) -> None:
        """Top up shards: draw ``requests[ad]`` extra sets into each
        listed ad's shard.

        This is the engine's single entry point — TIRM routes both the
        initial pilot phase (all ads at once) and every Algorithm-4
        growth top-up through it.  Under ``rng="philox"`` the request is
        decomposed into fixed-size ``(ad, chunk)`` tasks — a single ad's
        θ top-up included — which process mode fans across the worker
        pool; blocks are spliced back in ascending ``(ad, chunk)`` order
        regardless of completion order, so results are bit-identical for
        serial, 1-worker, and N-worker execution.
        """
        cleaned: dict[int, int] = {}
        for ad, count in requests.items():
            ad, count = int(ad), int(count)
            if not 0 <= ad < self.num_ads:
                raise ConfigurationError(f"ad {ad} out of range [0, {self.num_ads})")
            if count < 0:
                raise ConfigurationError(f"count must be >= 0, got {count} for ad {ad}")
            if count:
                cleaned[ad] = count
        if not cleaned:
            return
        if self.rng == "legacy":
            self._sample_serial_legacy(cleaned)
            return
        tasks: list[tuple[int, int, int, int]] = []
        for ad in sorted(cleaned):
            start = self._shards[ad].num_total
            for chunk_index, lo, hi in self._plans[ad].chunk_tasks(
                start, start + cleaned[ad]
            ):
                tasks.append((ad, chunk_index, lo, hi))
        self._dispatch_tasks(tasks)

    def _dispatch_tasks(self, tasks: list[tuple[int, int, int, int]]) -> None:
        """Execution seam: route a decomposed ``(ad, chunk, lo, hi)``
        task list to a substrate.  The base engine picks between the
        in-process path and the worker pool; subclasses (the distributed
        engine, :mod:`repro.dist`) override this single method to scatter
        the same tasks elsewhere — splice order, dsan recording, and the
        cache write-through all live above this seam, so every substrate
        is byte-identical by construction."""
        # A closed engine has no pool or payload left — serve in-process.
        # (A closed engine also has no in-flight futures: close drained
        # them.)  Any in-flight prefetch future matching a task must be
        # harvested through the pool path even for single-task requests.
        needs_pool = len(tasks) > 1 or any(
            (ad, chunk) in self._inflight for ad, chunk, _, _ in tasks
        )
        use_pool = (
            self.engine == "process" and needs_pool and self._finalizer.alive
        )
        if use_pool and self._start_method is None:
            if not self._warned_degraded:
                self._warned_degraded = True
                self._warn_degraded()
            use_pool = False
        if use_pool:
            self._run_tasks_process(tasks)
        else:
            self._run_tasks_serial(tasks)

    def ensure(self, targets: Mapping[int, int]) -> None:
        """Grow shards to *absolute* set counts: for each ad, sample
        exactly the missing index range ``[num_total, target)``.

        This is the index-addressed form of :meth:`sample`: callers name
        the sample-size target (TIRM's ``θ_i``) instead of a delta from
        the current stream position, which — together with the pure
        chunk streams — makes a mid-allocation resume deterministic: any
        engine with the same ``(seeds, chunk_size)`` asked to reach the
        same targets holds the same shards, no matter how the requests
        were split.  Targets at or below the current count are no-ops.
        In-flight chunks submitted by :meth:`prefetch` are harvested
        before any remainder is submitted.
        """
        self.sample(self._targets_to_extras(targets))

    def prefetch(self, targets: Mapping[int, int]) -> int:
        """Speculatively submit the chunk tasks needed to reach the
        given *absolute* per-ad targets, without blocking; returns how
        many tasks were submitted.

        A later :meth:`ensure`/:meth:`sample` harvests matching
        in-flight futures before submitting anything new, so sampling
        overlaps whatever the caller does in between (TIRM overlaps its
        greedy selection).  Speculation cannot change results: chunks
        are pure functions of their ``(entropy, ad, chunk)`` address, so
        a speculative chunk is byte-identical whether or not it ends up
        needed — and one never consumed is discarded (its segment
        unlinked) at :meth:`close`.

        No-op (returns 0) for serial engines, legacy streams, degraded
        or closed engines, and for chunks already pooled, cached, or in
        flight.
        """
        extras = self._targets_to_extras(targets)
        if (
            self.rng != "philox"
            or self.engine != "process"
            or self._start_method is None
            or not self._finalizer.alive
            or not extras
        ):
            return 0
        submitted = 0
        executor = None
        for ad in sorted(extras):
            start = self._shards[ad].num_total
            for chunk_index, _, _ in self._plans[ad].chunk_tasks(
                start, start + extras[ad]
            ):
                key = (ad, chunk_index)
                if (
                    key in self._inflight
                    or self._cached_block(ad, chunk_index) is not None
                    or (
                        self._cache is not None
                        and self._cache.has(self._shard_keys[ad], chunk_index)
                    )
                ):
                    continue
                if executor is None:
                    # Lazy: a fully cache-warm prefetch spawns no pool.
                    executor = self._ensure_executor()
                self._inflight[key] = executor.submit(
                    _worker_sample_chunk, self._engine_id, ad, self.mode,
                    chunk_index, self.transport,
                )
                self.backend_invocations += 1
                submitted += 1
        return submitted

    def _targets_to_extras(self, targets: Mapping[int, int]) -> dict[int, int]:
        extras: dict[int, int] = {}
        for ad, target in targets.items():
            ad, target = int(ad), int(target)
            if not 0 <= ad < self.num_ads:
                raise ConfigurationError(f"ad {ad} out of range [0, {self.num_ads})")
            if target < 0:
                raise ConfigurationError(
                    f"target must be >= 0, got {target} for ad {ad}"
                )
            current = self._shards[ad].num_total
            if target > current:
                extras[ad] = target - current
        return extras

    def _sample_serial_legacy(self, requests: dict[int, int]) -> None:
        for ad in sorted(requests):
            sampler, shard, count = self._samplers[ad], self._shards[ad], requests[ad]
            if self._cache is not None:
                self._sample_legacy_cached(ad, sampler, shard, count)
            elif self._dsan is not None:
                # Same streams and same pool state as the *_into paths
                # (sample_flat is the documented bit-exact equivalent),
                # but routed through a packed block so it can be hashed.
                # Legacy streams have no chunk addresses, so the digest
                # key is the per-ad request ordinal.
                members, lengths = sampler.sample_flat(count, mode=self.mode)
                ordinal = self._legacy_ordinals.get(ad, 0)
                self._legacy_ordinals[ad] = ordinal + 1
                self._dsan.record(ad, ordinal, members, lengths)
                shard.add_flat(members, lengths)
                self.backend_invocations += 1
            elif self.mode == "blocked":
                sampler.sample_blocked_into(shard, count)
                self.backend_invocations += 1
            else:
                sampler.sample_into(shard, count)
                self.backend_invocations += 1

    def _sample_legacy_cached(self, ad, sampler, shard, count: int) -> None:
        """One legacy request through the shard cache.

        Entries are keyed by the per-ad request ordinal under the
        *initial-state* shard key and carry the post-request stream
        state, so a hit both splices the block and advances the stream
        exactly as sampling would have.  A request sequence that
        diverges from the cached one (an entry exists but its set count
        differs) permanently stops consulting — and extending — this
        ad's cached sequence: every later cached entry assumes a stream
        history this run no longer shares.
        """
        ordinal = self._legacy_ordinals.get(ad, 0)
        self._legacy_ordinals[ad] = ordinal + 1
        diverged = ad in self._legacy_diverged
        if not diverged:
            entry = self._cache.load(self._shard_keys[ad], ordinal)
            if entry is not None:
                try:
                    if entry.num_sets != count or entry.state is None:
                        self._legacy_diverged.add(ad)
                        diverged = True
                    else:
                        if self._dsan is not None:
                            self._dsan.record(
                                ad, ordinal, entry.members, entry.lengths
                            )
                        shard.add_flat_from_buffer(
                            entry.buffer,
                            num_sets=entry.num_sets,
                            num_members=entry.num_members,
                            lengths_offset=entry.lengths_offset,
                            members_offset=entry.members_offset,
                        )
                        sampler.set_legacy_state(entry.state)
                        return
                finally:
                    entry.release()
        members, lengths = sampler.sample_flat(count, mode=self.mode)
        self.backend_invocations += 1
        if self._dsan is not None:
            self._dsan.record(ad, ordinal, members, lengths)
        if not diverged:
            # A plain miss extends the cached sequence: every earlier
            # ordinal hit (or was stored), so the stream state matches.
            self._cache.store(
                self._shard_keys[ad], ordinal, members, lengths,
                state=sampler.legacy_state(), meta=self._cache_meta[ad],
            )
        shard.add_flat(members, lengths)

    def _cached_block(self, ad: int, chunk_index: int):
        cached = self._tail_blocks.get(ad)
        if cached is not None and cached[0] == chunk_index:
            return cached[1]
        if self._retain_blocks:
            return self._block_memo.get((ad, chunk_index))
        return None

    def _retain_block(
        self, ad: int, chunk_index: int, block, *, copy: bool = False
    ) -> None:
        """Memoize a full chunk block for the resident-engine memo (see
        ``retain_blocks``); ``copy`` when the arrays view a buffer that
        dies with the caller (cache entry, shm segment)."""
        if not self._retain_blocks:
            return
        if copy:
            block = (block[0].copy(), block[1].copy())
        self._block_memo[(ad, chunk_index)] = block

    def _store_chunk(self, ad: int, chunk_index: int, block) -> None:
        """Write one freshly computed *full* chunk block through to the
        shard cache (no-op without one; write failures warn once inside
        the cache and never fail the run)."""
        if self._cache is not None:
            self._cache.store(
                self._shard_keys[ad], chunk_index, block[0], block[1],
                meta=self._cache_meta[ad],
            )

    def _splice_from_cache(
        self, ad: int, chunk_index: int, lo: int, hi: int
    ) -> bool:
        """Serve sets ``[lo, hi)`` of a chunk from the shard cache.

        The load verifies the entry against its stored digest
        (:meth:`repro.store.ShardCache.load`); a verified block is
        spliced through the pool's single-copy buffer path — the same
        splice the shm transport uses — and recorded with dsan exactly
        like a computed block.  Returns ``False`` on miss or quarantined
        corruption, and the caller recomputes: the cache can only ever
        save work, never change bytes."""
        entry = self._cache.load(self._shard_keys[ad], chunk_index)
        if entry is None:
            return False
        try:
            if entry.num_sets != self.chunk_size:
                # Impossible under the key schema (chunk size is part of
                # the key); refuse to splice rather than trust it.
                return False
            if self._dsan is not None:
                self._dsan.record(ad, chunk_index, entry.members, entry.lengths)
            self._retain_block(
                ad, chunk_index, (entry.members, entry.lengths), copy=True
            )
            bounds = np.zeros(entry.num_sets + 1, dtype=np.int64)
            np.cumsum(entry.lengths, out=bounds[1:])
            self._shards[ad].add_flat_from_buffer(
                entry.buffer,
                num_sets=hi - lo,
                num_members=int(bounds[hi] - bounds[lo]),
                lengths_offset=entry.lengths_offset + lo * _LENGTH_ITEMSIZE,
                members_offset=(
                    entry.members_offset + int(bounds[lo]) * _MEMBER_ITEMSIZE
                ),
            )
            self._samplers[ad].num_sampled += hi - lo
            if hi < self.chunk_size:
                # The tail cache must own its block: the mapping dies now.
                self._tail_blocks[ad] = (
                    chunk_index, (entry.members.copy(), entry.lengths.copy())
                )
            else:
                self._tail_blocks.pop(ad, None)
            return True
        finally:
            entry.release()

    def _splice_block(
        self, ad: int, chunk_index: int, lo: int, hi: int, block
    ) -> None:
        """Append sets ``[lo, hi)`` of the chunk to the ad's shard and
        cache the block when the chunk is still partially consumed."""
        if self._dsan is not None:
            # Digest the *full* chunk block (workers always compute whole
            # chunks), so serial, pickle, shm and tail-cache arrivals of
            # the same chunk hash the same bytes by construction.
            self._dsan.record(ad, chunk_index, block[0], block[1])
        self._retain_block(ad, chunk_index, block)
        members, lengths = _slice_flat(block[0], block[1], lo, hi)
        self._shards[ad].add_flat(members, lengths)
        self._samplers[ad].num_sampled += hi - lo
        if hi < self.chunk_size:
            self._tail_blocks[ad] = (chunk_index, block)
        else:
            self._tail_blocks.pop(ad, None)

    def _splice_segment(
        self, ad: int, chunk_index: int, lo: int, hi: int,
        name: str, num_sets: int, num_members: int,
    ) -> None:
        """Shm-transport splice: attach a worker-published segment,
        append sets ``[lo, hi)`` straight out of it through the pool's
        single-copy buffer path, and retire the segment.  Exactly one
        unlink per segment, on success and error paths alike."""
        segment = shared_memory.SharedMemory(name=name)
        closed = False
        try:
            lengths = np.frombuffer(
                segment.buf, dtype=_LENGTH_DTYPE, count=num_sets
            )
            bounds = np.zeros(num_sets + 1, dtype=np.int64)
            np.cumsum(lengths, out=bounds[1:])
            members_offset = num_sets * _LENGTH_ITEMSIZE
            if self._dsan is not None:
                # Same full-chunk digest as _splice_block, straight off
                # the segment (zero-copy views; a divergence raises here
                # and the finally below still retires the segment).
                members_view = np.frombuffer(
                    segment.buf, dtype=MEMBER_DTYPE, count=num_members,
                    offset=members_offset,
                )
                try:
                    self._dsan.record(ad, chunk_index, members_view, lengths)
                finally:
                    del members_view
            if self._cache is not None:
                # Write-through straight off the segment (zero-copy
                # views; write_block serializes without keeping refs, so
                # the finally below can still retire the segment).
                members_view = np.frombuffer(
                    segment.buf, dtype=MEMBER_DTYPE, count=num_members,
                    offset=members_offset,
                )
                try:
                    self._store_chunk(ad, chunk_index, (members_view, lengths))
                finally:
                    del members_view
            if self._retain_blocks:
                # Same zero-copy view discipline: _retain_block copies
                # out of the segment, the view itself must die before
                # the finally below closes the mapping.
                members_view = np.frombuffer(
                    segment.buf, dtype=MEMBER_DTYPE, count=num_members,
                    offset=members_offset,
                )
                try:
                    self._retain_block(
                        ad, chunk_index, (members_view, lengths), copy=True
                    )
                finally:
                    del members_view
            self._shards[ad].add_flat_from_buffer(
                segment.buf,
                num_sets=hi - lo,
                num_members=int(bounds[hi] - bounds[lo]),
                lengths_offset=lo * _LENGTH_ITEMSIZE,
                members_offset=members_offset + int(bounds[lo]) * _MEMBER_ITEMSIZE,
            )
            self._samplers[ad].num_sampled += hi - lo
            if hi < self.chunk_size:
                # The tail cache must own its block: the segment dies now.
                members = np.frombuffer(
                    segment.buf, dtype=MEMBER_DTYPE, count=num_members,
                    offset=members_offset,
                )
                self._tail_blocks[ad] = (
                    chunk_index, (members.copy(), lengths.copy())
                )
                del members
            else:
                self._tail_blocks.pop(ad, None)
            del lengths, bounds
            segment.close()
            closed = True
        finally:
            if not closed:
                try:
                    segment.close()
                except BufferError:
                    # An exception left a live view (the traceback pins
                    # the frame); the mapping is reclaimed at GC — the
                    # unlink below still removes the segment itself.
                    pass
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass

    def _run_tasks_serial(self, tasks: list[tuple[int, int, int, int]]) -> None:
        for ad, chunk_index, lo, hi in tasks:
            block = self._cached_block(ad, chunk_index)
            if block is None:
                if self._cache is not None and self._splice_from_cache(
                    ad, chunk_index, lo, hi
                ):
                    continue
                block = self._samplers[ad].sample_chunk_block(
                    self._plans[ad], chunk_index, mode=self.mode
                )
                self.backend_invocations += 1
                self._store_chunk(ad, chunk_index, block)
            self._splice_block(ad, chunk_index, lo, hi, block)

    def _run_tasks_process(self, tasks: list[tuple[int, int, int, int]]) -> None:
        executor = None
        blocks: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        pending: dict[tuple[int, int], Future] = {}
        cache_hits: set[tuple[int, int]] = set()
        try:
            for ad, chunk_index, lo, hi in tasks:
                key = (ad, chunk_index)
                inflight = self._inflight.pop(key, None)
                if inflight is not None:
                    pending[key] = inflight  # harvest prefetched work
                    continue
                block = self._cached_block(ad, chunk_index)
                if block is not None:
                    blocks[key] = block
                    continue
                if self._cache is not None and self._cache.has(
                    self._shard_keys[ad], chunk_index
                ):
                    # Submit-or-skip on a cheap existence probe; the
                    # splice loop below does the verified load (and
                    # recomputes in-process if the entry fails it).
                    cache_hits.add(key)
                    continue
                if executor is None:
                    # Lazy: a fully cache-warm request spawns no pool.
                    executor = self._ensure_executor()
                pending[key] = executor.submit(
                    _worker_sample_chunk, self._engine_id, ad, self.mode,
                    chunk_index, self.transport,
                )
                self.backend_invocations += 1
            # Deterministic splice order (ascending ad, then chunk — the
            # order the task list was built in), independent of which
            # worker finished first.  Each result is consumed as soon as
            # *its* future resolves — no barrier on the whole batch.
            for ad, chunk_index, lo, hi in tasks:
                key = (ad, chunk_index)
                future = pending.pop(key, None)
                if future is None:
                    block = blocks.get(key)
                    if block is None and key in cache_hits:
                        if self._splice_from_cache(ad, chunk_index, lo, hi):
                            continue
                        # The probed entry vanished or failed its digest
                        # check: recompute in-process — correctness over
                        # throughput for a should-never-happen path.
                        block = self._samplers[ad].sample_chunk_block(
                            self._plans[ad], chunk_index, mode=self.mode
                        )
                        self.backend_invocations += 1
                        self._store_chunk(ad, chunk_index, block)
                    self._splice_block(ad, chunk_index, lo, hi, block)
                    continue
                result = future.result()
                if self.transport == "shm":
                    self._splice_segment(
                        ad, chunk_index, lo, hi, result[2], result[3], result[4]
                    )
                else:
                    block = (result[2], result[3])
                    self._store_chunk(ad, chunk_index, block)
                    self._splice_block(ad, chunk_index, lo, hi, block)
        except BaseException:
            # A failed batch (worker crash, submit error, splice error)
            # leaves the request partially applied; don't also leak the
            # worker pool or any published segments — drain what's still
            # pending here, then route through the idempotent close()
            # (which drains the prefetch ledger the same way).
            self._drain_futures(pending.values())
            self.close()
            raise

    def _drain_futures(self, futures) -> None:
        """Cancel-or-consume a set of in-flight futures: whatever cannot
        be cancelled is waited for, and (under the shm transport) its
        never-spliced segment is unlinked."""
        futures = list(futures)
        for future in futures:
            future.cancel()
        for future in futures:
            if future.cancelled():
                continue
            try:
                result = future.result()
            except BaseException:
                continue  # worker failed: _publish_block cleaned up
            if self.transport == "shm":
                _unlink_segment(result[2])

    # ------------------------------------------------------------------
    # Process-pool plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _fork_available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    @staticmethod
    def _shm_available() -> bool:
        return shared_memory is not None

    @classmethod
    def resolve_transport(cls, transport: str = "auto") -> str:
        """Resolve a transport knob to ``"shm"`` or ``"pickle"``.

        ``"auto"`` picks shm where :mod:`multiprocessing.shared_memory`
        is available; an explicit ``"shm"`` without it raises
        :class:`~repro.errors.ConfigurationError`.
        """
        if transport not in TRANSPORT_MODES:
            raise ConfigurationError(
                f"transport must be one of {TRANSPORT_MODES}, got {transport!r}"
            )
        if transport == "pickle":
            return "pickle"
        if cls._shm_available():
            return "shm"
        if transport == "shm":
            raise ConfigurationError(
                "transport='shm' needs multiprocessing.shared_memory, which "
                "is unavailable on this platform; use transport='pickle'"
            )
        return "pickle"

    @classmethod
    def _resolve_start_method(cls, requested: str) -> str | None:
        """Resolve the start-method knob to ``"fork"``/``"spawn"``, or
        ``None`` when no usable method exists (degrade to serial)."""
        methods = multiprocessing.get_all_start_methods()
        if requested in ("auto", "fork") and cls._fork_available():
            return "fork"
        # Spawn ships the payload through a shared-memory arena; without
        # shared memory it would pay a per-worker graph pickle, so it
        # degrades instead (the historical no-fork behavior).
        if (
            requested in ("auto", "spawn")
            and "spawn" in methods
            and cls._shm_available()
        ):
            return "spawn"
        return None

    def _spawn_initargs(self) -> tuple:
        """Build (once) the spawn payload arena — graph in-CSR + per-ad
        canonical probability rows — and return the executor initializer
        arguments describing it."""
        if self._resources["arena"] is None:
            parts = _payload_parts(self.graph, self._samplers)
            layout, total = _payload_layout(parts)
            arena = shared_memory.SharedMemory(create=True, size=total)  # reprolint: disable=R104 -- arena outlives this call by design; _release_engine_resources owns the single unlink (close/GC-finalizer), the error path below unlinks locally
            try:
                for (key, dtype, count, off), (_, array) in zip(layout, parts):
                    np.frombuffer(
                        arena.buf, dtype=np.dtype(dtype), count=count, offset=off
                    )[:] = array
            except BaseException:
                arena.close()
                arena.unlink()
                raise
            self._resources["arena"] = arena
            self._arena_layout = layout
        backend_spec = (
            self.backend.name
            if self.backend.name in ("numpy", "numba")
            else self.backend
        )
        return (
            self._engine_id,
            self._resources["arena"].name,
            self._arena_layout,
            (self.graph.num_nodes, self.graph.num_edges, self.num_ads),
            tuple(self._entropies),
            self.chunk_size,
            backend_spec,
        )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        executor = self._resources["executor"]
        if executor is None:
            workers = self._max_workers
            if workers is None:
                workers = max(1, os.cpu_count() or 1)
            if self.transport == "shm":
                # Start the parent's resource tracker *before* the pool exists
                # so every worker (fork children inherit it; spawn children
                # receive its fd) reports segment register/unregister events to
                # the same tracker process.  Without this, each fork child
                # lazily launches a private tracker on its first segment
                # create, and that tracker warns about "leaked" segments at
                # shutdown because the parent's unlink was reported elsewhere.
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            context = multiprocessing.get_context(self._start_method)
            if self._start_method == "spawn":
                executor = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=context,
                    initializer=_spawn_worker_init,
                    initargs=self._spawn_initargs(),
                )
            else:
                executor = ProcessPoolExecutor(
                    max_workers=workers, mp_context=context
                )
            self._resources["executor"] = executor
        return executor

    def close(self) -> None:
        """Cancel in-flight prefetch futures, shut down the worker pool,
        retire every engine-owned shared-memory segment, and release the
        payload.

        Idempotent and exception-safe: the teardown callback is shared
        with the GC finalizer and runs at most once however many times
        it is triggered, and every segment is unlinked exactly once.
        """
        if self._finalizer.alive:
            self._finalizer()

    def __enter__(self) -> "ShardedSamplingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _warn_degraded(self) -> None:
        # The engine id makes the message unique per instance, so the
        # warnings registry's once-per-location dedup cannot swallow the
        # warning for every engine after the first in a process.
        warnings.warn(
            f"no usable process start method (fork unavailable, spawn needs "
            f"shared memory); ShardedSamplingEngine #{self._engine_id} "
            f"(engine='process') will sample serially",
            RuntimeWarning,
            stacklevel=4,
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(h={self.num_ads}, mode={self.mode!r}, "
            f"engine={self.engine!r}, rng={self.rng!r}, "
            f"chunk_size={self.chunk_size}, backend={self.backend_name!r}, "
            f"transport={self.transport!r}, total_sets={self.total_sets()})"
        )
