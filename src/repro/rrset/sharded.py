"""Per-advertiser sharded RR-set sampling engine.

TIRM (Algorithms 2–4, §5.2) keeps one independent RR-set collection and
sampler per advertiser.  :class:`ShardedSamplingEngine` makes that
structure explicit: it owns one :class:`~repro.rrset.pool.RRSetPool`
*shard* per advertiser and serves batched sampling requests — the
initial pilots for all ``h`` ads, and every Algorithm-4 ``θ_i`` top-up —
either serially in-process or concurrently across a
``concurrent.futures`` process pool.

Process mode
------------

* Workers receive the graph CSR and the per-ad probability rows **once**
  via fork (copy-on-write shared pages): the parent registers its
  payload in a module-level registry before creating the executor, and
  the forked children inherit it without any pickling of the graph.
* Each request ships only ``(ad, count, rng-state)`` to a worker and
  gets back a packed ``(members, lengths)`` block plus the advanced
  rng-state; the parent splices the block into the ad's shard with
  ``RRSetPool.add_flat`` and stores the state for the ad's next request.
* Because the per-ad stream state round-trips with every task, an ad's
  sample stream is continuous and **bit-identical to serial execution**
  no matter which worker serves which request, in what order requests
  complete, or how many workers exist.  ``engine="process"`` and
  ``engine="serial"`` therefore produce the same shards set-for-set —
  and identical TIRM allocations — for the same seed.

Serial mode is the zero-overhead fallback: it calls the per-ad samplers
in ad order, exactly like the pre-engine ``TIRMAllocator`` did, so it
stays bit-identical to the historical per-seed child streams.

On platforms without ``fork`` the process engine degrades to serial
execution (with a warning) rather than paying a spawn-pickle of the
graph per worker; see ``docs/rrset_engine.md`` for the architecture.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DirectedGraph
from repro.rrset.pool import RRSetPool
from repro.rrset.sampler import RRSetSampler
from repro.utils.rng import spawn_generators

ENGINE_MODES = ("serial", "process")
SAMPLER_MODES = ("scalar", "blocked")

#: Engine-id allocator: payloads of concurrently live engines must not
#: collide in the worker-side registries.
_ENGINE_IDS = itertools.count()

#: Parent-side payload registry, inherited by forked workers.  Maps
#: engine id -> (graph, per-ad probability rows).
_FORK_PAYLOADS: dict[int, tuple[DirectedGraph, Sequence[np.ndarray]]] = {}

#: Worker-side sampler cache, keyed by (engine id, ad).  Samplers are
#: rebuilt lazily per worker so the O(m) scalar adjacency flattening is
#: paid at most once per (worker, ad); their stream state is overwritten
#: by every task, so the cache seed is irrelevant.
_WORKER_SAMPLERS: dict[tuple[int, int], RRSetSampler] = {}


def _worker_sample(engine_id: int, ad: int, mode: str, count: int, rng_state):
    """Run one sampling task in a worker: restore the ad's stream state,
    draw ``count`` sets, and return the packed block plus the new state."""
    key = (engine_id, ad)
    sampler = _WORKER_SAMPLERS.get(key)
    if sampler is None:
        graph, probs_per_ad = _FORK_PAYLOADS[engine_id]
        sampler = RRSetSampler(graph, probs_per_ad[ad], seed=0)
        _WORKER_SAMPLERS[key] = sampler
    sampler.set_stream_state(mode, rng_state)
    members, lengths = sampler.sample_flat(count, mode=mode)
    return ad, members, lengths, sampler.get_stream_state(mode)


class ShardedSamplingEngine:
    """One RR-set pool shard + sampler stream per advertiser.

    Parameters
    ----------
    graph:
        The social graph shared by every shard.
    probs_per_ad:
        One per-canonical-edge probability array per advertiser.
    seeds:
        Per-ad seeds: a sequence of ``h`` seed-likes (one per ad, e.g.
        the ``spawn_generators`` children TIRM already derives), or a
        single seed-like that is split into ``h`` child streams.
    mode:
        ``"blocked"`` (vectorized batched BFS) or ``"scalar"`` (the
        bit-compatible Mersenne BFS) — the same knob as
        ``TIRMAllocator(sampler_mode=...)``.
    engine:
        ``"serial"`` samples in-process in ad order; ``"process"``
        dispatches requests across a fork-based process pool.  Both
        produce identical shards for the same seeds.
    max_workers:
        Process-pool width (default: ``min(h, os.cpu_count())``).
    """

    def __init__(
        self,
        graph: DirectedGraph,
        probs_per_ad: Sequence,
        *,
        seeds=None,
        mode: str = "blocked",
        engine: str = "serial",
        max_workers: int | None = None,
    ) -> None:
        if mode not in SAMPLER_MODES:
            raise ConfigurationError(
                f"mode must be one of {SAMPLER_MODES}, got {mode!r}"
            )
        if engine not in ENGINE_MODES:
            raise ConfigurationError(
                f"engine must be one of {ENGINE_MODES}, got {engine!r}"
            )
        probs_per_ad = list(probs_per_ad)
        if not probs_per_ad:
            raise ConfigurationError("need at least one advertiser")
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        self.graph = graph
        self.mode = mode
        self.engine = engine
        h = len(probs_per_ad)
        if isinstance(seeds, (list, tuple)):
            if len(seeds) != h:
                raise ConfigurationError(
                    f"got {len(seeds)} per-ad seeds for {h} advertisers"
                )
            per_ad_seeds = list(seeds)
        else:
            per_ad_seeds = spawn_generators(seeds, h)
        self._samplers = [
            RRSetSampler(graph, probs_per_ad[ad], seed=per_ad_seeds[ad])
            for ad in range(h)
        ]
        self._shards = [RRSetPool(graph.num_nodes) for _ in range(h)]
        self._max_workers = max_workers
        self._engine_id = next(_ENGINE_IDS)
        self._executor: ProcessPoolExecutor | None = None
        self._payload_registered = False
        self._warned_no_fork = False
        if engine == "process":
            _FORK_PAYLOADS[self._engine_id] = (graph, probs_per_ad)
            self._payload_registered = True

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_ads(self) -> int:
        """Number of shards ``h``."""
        return len(self._shards)

    def shard(self, ad: int) -> RRSetPool:
        """The advertiser's RR-set pool shard."""
        return self._shards[ad]

    def sampler(self, ad: int) -> RRSetSampler:
        """The advertiser's sampler (the parent-side stream owner)."""
        return self._samplers[ad]

    def total_sets(self) -> int:
        """Σ over shards of sets ever sampled."""
        return int(sum(s.num_total for s in self._shards))

    def memory_bytes(self) -> int:
        """Σ over shards of bytes held (the Table-4 figure)."""
        return int(sum(s.memory_bytes() for s in self._shards))

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, requests: Mapping[int, int]) -> None:
        """Top up shards: draw ``requests[ad]`` extra sets into each
        listed ad's shard.

        This is the engine's single entry point — TIRM routes both the
        initial pilot phase (all ads at once) and every Algorithm-4
        growth top-up through it.  Requests for distinct ads are
        independent streams, so process mode runs them concurrently;
        results are spliced in ascending ad order either way.

        A single ad's stream is strictly sequential, so a one-ad request
        has no parallelism to exploit: process mode serves it in-process
        rather than paying a worker round-trip.  Mixing the two paths is
        safe — the parent-side sampler is the stream's source of truth
        (worker tasks round-trip its state), so results stay
        bit-identical either way.
        """
        cleaned: dict[int, int] = {}
        for ad, count in requests.items():
            ad, count = int(ad), int(count)
            if not 0 <= ad < self.num_ads:
                raise ConfigurationError(f"ad {ad} out of range [0, {self.num_ads})")
            if count < 0:
                raise ConfigurationError(f"count must be >= 0, got {count} for ad {ad}")
            if count:
                cleaned[ad] = count
        if not cleaned:
            return
        if self.engine == "process" and len(cleaned) > 1:
            if self._fork_available():
                self._sample_process(cleaned)
                return
            if not self._warned_no_fork:  # pragma: no cover - non-fork only
                self._warned_no_fork = True
                _warn_no_fork()
        self._sample_serial(cleaned)

    def _sample_serial(self, requests: dict[int, int]) -> None:
        for ad in sorted(requests):
            sampler, shard, count = self._samplers[ad], self._shards[ad], requests[ad]
            if self.mode == "blocked":
                sampler.sample_blocked_into(shard, count)
            else:
                sampler.sample_into(shard, count)

    def _sample_process(self, requests: dict[int, int]) -> None:
        executor = self._ensure_executor()
        futures = [
            executor.submit(
                _worker_sample,
                self._engine_id,
                ad,
                self.mode,
                requests[ad],
                self._samplers[ad].get_stream_state(self.mode),
            )
            for ad in sorted(requests)
        ]
        blocks: dict[int, tuple] = {}
        for future in futures:
            ad, members, lengths, new_state = future.result()
            blocks[ad] = (members, lengths, new_state)
        # Deterministic splice order (ascending ad), independent of which
        # worker finished first.
        for ad in sorted(blocks):
            members, lengths, new_state = blocks[ad]
            self._shards[ad].add_flat(members, lengths)
            self._samplers[ad].set_stream_state(self.mode, new_state)
            self._samplers[ad].num_sampled += requests[ad]

    # ------------------------------------------------------------------
    # Process-pool plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _fork_available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            workers = self._max_workers
            if workers is None:
                workers = max(1, min(self.num_ads, os.cpu_count() or 1))
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool and release the fork payload."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._payload_registered:
            _FORK_PAYLOADS.pop(self._engine_id, None)
            self._payload_registered = False

    def __enter__(self) -> "ShardedSamplingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(h={self.num_ads}, mode={self.mode!r}, "
            f"engine={self.engine!r}, total_sets={self.total_sets()})"
        )


def _warn_no_fork() -> None:  # pragma: no cover - non-fork platforms only
    warnings.warn(
        "fork start method unavailable; ShardedSamplingEngine(engine='process') "
        "will sample serially",
        RuntimeWarning,
        stacklevel=3,
    )
