"""Per-advertiser sharded RR-set sampling engine.

TIRM (Algorithms 2–4, §5.2) keeps one independent RR-set collection and
sampler per advertiser.  :class:`ShardedSamplingEngine` makes that
structure explicit: it owns one :class:`~repro.rrset.pool.RRSetPool`
*shard* per advertiser and serves batched sampling requests — the
initial pilots for all ``h`` ads, and every Algorithm-4 ``θ_i`` top-up —
either serially in-process or concurrently across a
``concurrent.futures`` process pool.

Counter-based streams (``rng="philox"``, the default)
-----------------------------------------------------

Every RR set is addressed by ``(global_seed, ad, set_index)``: set
indices are grouped into fixed-size *chunks*, and chunk ``c`` of ad
``i`` owns the private generator
``Philox(SeedSequence(entropy, spawn_key=(i, c)))`` (see
:class:`~repro.rrset.sampler.StreamPlan`).  A request — *including a
single ad's θ top-up* — therefore decomposes into independent
``(ad, chunk)`` tasks that are fanned across the process pool and
spliced back in set-index order.  Because every chunk is a pure function
of its address, the shards are **bit-identical for serial, 1-worker and
N-worker execution**, no matter how requests are split across calls.
No RNG state round-trips through workers; each task ships only
``(engine id, ad, chunk, lo, hi)``.

* Workers receive the graph CSR, the per-ad probability rows, and the
  stream entropies **once** via fork (copy-on-write shared pages): the
  parent registers its payload in a module-level registry before
  creating the executor, and the forked children inherit it without any
  pickling of the graph.
* Workers return packed ``(members, lengths)`` blocks; the parent
  splices them into the ads' shards in ascending ``(ad, chunk)`` order,
  independent of completion order.

Legacy streams (``rng="legacy"``)
---------------------------------

The historical per-ad stateful streams (Mersenne scalar / PCG64
blocked), kept for bit-exact reproduction of the seed implementation.
They are strictly sequential — set ``k`` cannot be drawn without first
drawing sets ``0..k-1`` — so legacy requests are always served serially
in ad order, exactly like the pre-engine ``TIRMAllocator`` loop, even
under ``engine="process"`` (a warning says so).

On platforms without ``fork`` the process engine degrades to serial
execution (with a warning per engine) rather than paying a spawn-pickle
of the graph per worker; see ``docs/rrset_engine.md``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DirectedGraph
from repro.rrset.backends import resolve_backend
from repro.rrset.pool import RRSetPool
from repro.rrset.sampler import (
    DEFAULT_CHUNK_SIZE,
    RRSetSampler,
    StreamPlan,
    _slice_flat,
)
from repro.utils.rng import seed_entropy, spawn_generators

ENGINE_MODES = ("serial", "process")
SAMPLER_MODES = ("scalar", "blocked")
RNG_MODES = ("philox", "legacy")

#: Engine-id allocator: payloads of concurrently live engines must not
#: collide in the worker-side registries.
_ENGINE_IDS = itertools.count()

#: Parent-side payload registry, inherited by forked workers.  Maps
#: engine id -> (graph, per-ad probability rows, per-ad entropies,
#: chunk size, resolved sampling backend).
_FORK_PAYLOADS: dict[int, tuple] = {}

#: Worker-side sampler cache, keyed by (engine id, ad).  Samplers are
#: rebuilt lazily per worker so the O(m) scalar adjacency flattening is
#: paid at most once per (worker, ad); chunk streams come from the
#: StreamPlan, so the cache seed is irrelevant.
_WORKER_SAMPLERS: dict[tuple[int, int], RRSetSampler] = {}


def _worker_sample_chunk(engine_id: int, ad: int, mode: str, chunk_index: int):
    """Run one chunk task in a worker: rebuild the ad's plan from the
    fork payload and return the chunk's full packed block.  The parent
    slices out the requested subrange and caches partial tail blocks, so
    a chunk is computed at most once per engine lifetime."""
    key = (engine_id, ad)
    graph, probs_per_ad, entropies, chunk_size, backend = _FORK_PAYLOADS[engine_id]
    sampler = _WORKER_SAMPLERS.get(key)
    if sampler is None:
        sampler = RRSetSampler(graph, probs_per_ad[ad], seed=0, backend=backend)
        _WORKER_SAMPLERS[key] = sampler
    plan = StreamPlan(entropies[ad], ad, chunk_size)
    members, lengths = sampler.sample_chunk_block(plan, chunk_index, mode=mode)
    return ad, chunk_index, members, lengths


def _release_engine_resources(resources: dict) -> None:
    """Teardown shared by ``close()`` and the GC finalizer: shut the
    worker pool down and drop the fork payload.  Runs at most once per
    engine (``weakref.finalize`` guarantees it), in whichever comes
    first — explicit close, context-manager exit, or garbage collection."""
    executor = resources.get("executor")
    if executor is not None:
        resources["executor"] = None
        executor.shutdown(wait=True)
    payload_key = resources.get("payload_key")
    if payload_key is not None:
        resources["payload_key"] = None
        _FORK_PAYLOADS.pop(payload_key, None)


class ShardedSamplingEngine:
    """One RR-set pool shard per advertiser, with chunk-parallel sampling.

    Parameters
    ----------
    graph:
        The social graph shared by every shard.
    probs_per_ad:
        One per-canonical-edge probability array per advertiser.
    seeds:
        With ``rng="philox"``: a single seed-like whose
        :func:`~repro.utils.rng.seed_entropy` becomes the global stream
        root (per-ad streams are separated by the ``spawn_key``), or a
        sequence of ``h`` seed-likes for explicit per-ad roots.  With
        ``rng="legacy"``: a sequence of ``h`` per-ad seeds, or a single
        seed split into ``h`` child streams — exactly the historical
        behavior.
    mode:
        ``"blocked"`` (vectorized batched BFS) or ``"scalar"`` (the
        per-set Python BFS) — the same knob as
        ``TIRMAllocator(sampler_mode=...)``.
    engine:
        ``"serial"`` samples in-process; ``"process"`` fans chunk tasks
        across a fork-based process pool.  Both produce bit-identical
        shards for the same ``(seeds, chunk_size)``.
    max_workers:
        Process-pool width (default: ``os.cpu_count()``).
    rng:
        ``"philox"`` (counter-based, chunk-parallel; default) or
        ``"legacy"`` (the historical stateful streams, always serial).
    chunk_size:
        Set-index chunk width of the counter-based streams.  Part of the
        determinism contract — resampling with a different chunk size
        yields different (equally valid) sets.
    backend:
        Blocked-BFS backend (:mod:`repro.rrset.backends`): ``"numpy"``
        (reference, default), ``"numba"`` (JIT kernel), ``"auto"``, or
        a :class:`~repro.rrset.backends.SamplingBackend` instance.
        Resolved once here; forked workers inherit the resolved backend
        with the payload.  **Not** part of the determinism contract —
        every backend yields byte-identical shards.

    Examples
    --------
    Two advertisers, ten RR-sets each, served serially in-process::

        >>> from repro.graph.generators import erdos_renyi
        >>> from repro.graph.probabilities import constant_probabilities
        >>> from repro.rrset import ShardedSamplingEngine
        >>> graph = erdos_renyi(40, 0.1, seed=2)
        >>> probs = constant_probabilities(graph, 0.1)
        >>> with ShardedSamplingEngine(
        ...     graph, [probs, probs], seeds=11, chunk_size=8
        ... ) as engine:
        ...     engine.ensure({0: 10, 1: 10})   # grow shards to 10 sets
        ...     engine.total_sets()
        20
    """

    def __init__(
        self,
        graph: DirectedGraph,
        probs_per_ad: Sequence,
        *,
        seeds=None,
        mode: str = "blocked",
        engine: str = "serial",
        max_workers: int | None = None,
        rng: str = "philox",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        backend="numpy",
    ) -> None:
        if mode not in SAMPLER_MODES:
            raise ConfigurationError(
                f"mode must be one of {SAMPLER_MODES}, got {mode!r}"
            )
        if engine not in ENGINE_MODES:
            raise ConfigurationError(
                f"engine must be one of {ENGINE_MODES}, got {engine!r}"
            )
        if rng not in RNG_MODES:
            raise ConfigurationError(f"rng must be one of {RNG_MODES}, got {rng!r}")
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        probs_per_ad = list(probs_per_ad)
        if not probs_per_ad:
            raise ConfigurationError("need at least one advertiser")
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        self.graph = graph
        self.mode = mode
        self.engine = engine
        self.rng = rng
        self.chunk_size = int(chunk_size)
        # Resolve once, up front: "auto" picks its substrate here (and
        # warns here if it degrades), workers inherit the *resolved*
        # backend via the fork payload, and provenance records its name
        # (`backend_name`, mirroring RRSetSampler.backend/.backend_name).
        self.backend = resolve_backend(backend)
        h = len(probs_per_ad)
        if isinstance(seeds, (list, tuple)) and len(seeds) != h:
            raise ConfigurationError(
                f"got {len(seeds)} per-ad seeds for {h} advertisers"
            )
        if rng == "philox":
            if isinstance(seeds, (list, tuple)):
                entropies = [seed_entropy(s) for s in seeds]
            else:
                root = seed_entropy(seeds)
                entropies = [root] * h
            self._entropies: list[int] | None = entropies
            self._plans = [
                StreamPlan(entropies[ad], ad, self.chunk_size) for ad in range(h)
            ]
            # Chunk streams come from the plans; the sampler seed is inert.
            self._samplers = [
                RRSetSampler(graph, probs_per_ad[ad], seed=0, backend=self.backend)
                for ad in range(h)
            ]
        else:
            if isinstance(seeds, (list, tuple)):
                per_ad_seeds = list(seeds)
            else:
                per_ad_seeds = spawn_generators(seeds, h)
            self._entropies = None
            self._plans = None
            self._samplers = [
                RRSetSampler(
                    graph, probs_per_ad[ad], seed=per_ad_seeds[ad],
                    backend=self.backend,
                )
                for ad in range(h)
            ]
        self._shards = [RRSetPool(graph.num_nodes) for _ in range(h)]
        # Per-ad cache of the last *partial* tail chunk's full block:
        # chunks are pure, so a θ continuation that re-enters the chunk
        # can reuse the block instead of resampling it.  Bounded by one
        # block per ad; with it, every chunk is computed exactly once
        # per engine lifetime.  ad -> (chunk_index, (members, lengths)).
        self._tail_blocks: dict[int, tuple[int, tuple[np.ndarray, np.ndarray]]] = {}
        self._max_workers = max_workers
        self._engine_id = next(_ENGINE_IDS)
        self._warned_no_fork = False
        self._resources: dict = {"executor": None, "payload_key": None}
        if engine == "process" and rng == "philox":
            _FORK_PAYLOADS[self._engine_id] = (
                graph, probs_per_ad, entropies, self.chunk_size, self.backend,
            )
            self._resources["payload_key"] = self._engine_id
        try:
            # GC-safe teardown: __del__ runs in arbitrary GC order (flaky
            # under pytest-xdist), finalize does not.  close() triggers the
            # same callback, so teardown is idempotent by construction.
            self._finalizer = weakref.finalize(
                self, _release_engine_resources, self._resources
            )
            if engine == "process" and rng == "legacy":
                warnings.warn(
                    f"ShardedSamplingEngine #{self._engine_id}: rng='legacy' streams "
                    "are stateful and strictly sequential, so engine='process' will "
                    "sample serially; use rng='philox' for chunk-parallel sampling",
                    RuntimeWarning,
                    stacklevel=2,
                )
        except BaseException:
            # Construction failed after the fork payload was registered
            # (e.g. an error-filtered warning): a half-built engine has no
            # finalizer yet, so release its resources here instead of
            # leaking the payload (and any executor) forever.
            _release_engine_resources(self._resources)
            raise

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_ads(self) -> int:
        """Number of shards ``h``."""
        return len(self._shards)

    @property
    def backend_name(self) -> str:
        """The resolved backend's name (stats/provenance string; the
        backend *instance* is ``self.backend``)."""
        return self.backend.name

    def shard(self, ad: int) -> RRSetPool:
        """The advertiser's RR-set pool shard."""
        return self._shards[ad]

    def sampler(self, ad: int) -> RRSetSampler:
        """The advertiser's sampler (the parent-side BFS core)."""
        return self._samplers[ad]

    def plan(self, ad: int) -> StreamPlan | None:
        """The advertiser's counter-based stream plan (``None`` under
        ``rng="legacy"``)."""
        return None if self._plans is None else self._plans[ad]

    def stream_entropy(self, ad: int) -> int | None:
        """The ad's stream entropy root (``None`` under ``rng="legacy"``)."""
        return None if self._entropies is None else self._entropies[ad]

    def total_sets(self) -> int:
        """Σ over shards of sets ever sampled."""
        return int(sum(s.num_total for s in self._shards))

    def memory_bytes(self) -> int:
        """Σ over shards of bytes held (the Table-4 figure)."""
        return int(sum(s.memory_bytes() for s in self._shards))

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, requests: Mapping[int, int]) -> None:
        """Top up shards: draw ``requests[ad]`` extra sets into each
        listed ad's shard.

        This is the engine's single entry point — TIRM routes both the
        initial pilot phase (all ads at once) and every Algorithm-4
        growth top-up through it.  Under ``rng="philox"`` the request is
        decomposed into fixed-size ``(ad, chunk)`` tasks — a single ad's
        θ top-up included — which process mode fans across the worker
        pool; blocks are spliced back in ascending ``(ad, chunk)`` order
        regardless of completion order, so results are bit-identical for
        serial, 1-worker, and N-worker execution.
        """
        cleaned: dict[int, int] = {}
        for ad, count in requests.items():
            ad, count = int(ad), int(count)
            if not 0 <= ad < self.num_ads:
                raise ConfigurationError(f"ad {ad} out of range [0, {self.num_ads})")
            if count < 0:
                raise ConfigurationError(f"count must be >= 0, got {count} for ad {ad}")
            if count:
                cleaned[ad] = count
        if not cleaned:
            return
        if self.rng == "legacy":
            self._sample_serial_legacy(cleaned)
            return
        tasks: list[tuple[int, int, int, int]] = []
        for ad in sorted(cleaned):
            start = self._shards[ad].num_total
            for chunk_index, lo, hi in self._plans[ad].chunk_tasks(
                start, start + cleaned[ad]
            ):
                tasks.append((ad, chunk_index, lo, hi))
        # A closed engine has no pool or payload left — serve in-process.
        use_pool = (
            self.engine == "process" and len(tasks) > 1 and self._finalizer.alive
        )
        if use_pool and not self._fork_available():
            if not self._warned_no_fork:
                self._warned_no_fork = True
                self._warn_no_fork()
            use_pool = False
        if use_pool:
            self._run_tasks_process(tasks)
        else:
            self._run_tasks_serial(tasks)

    def ensure(self, targets: Mapping[int, int]) -> None:
        """Grow shards to *absolute* set counts: for each ad, sample
        exactly the missing index range ``[num_total, target)``.

        This is the index-addressed form of :meth:`sample`: callers name
        the sample-size target (TIRM's ``θ_i``) instead of a delta from
        the current stream position, which — together with the pure
        chunk streams — makes a mid-allocation resume deterministic: any
        engine with the same ``(seeds, chunk_size)`` asked to reach the
        same targets holds the same shards, no matter how the requests
        were split.  Targets at or below the current count are no-ops.
        """
        extras: dict[int, int] = {}
        for ad, target in targets.items():
            ad, target = int(ad), int(target)
            if not 0 <= ad < self.num_ads:
                raise ConfigurationError(f"ad {ad} out of range [0, {self.num_ads})")
            if target < 0:
                raise ConfigurationError(
                    f"target must be >= 0, got {target} for ad {ad}"
                )
            current = self._shards[ad].num_total
            if target > current:
                extras[ad] = target - current
        self.sample(extras)

    def _sample_serial_legacy(self, requests: dict[int, int]) -> None:
        for ad in sorted(requests):
            sampler, shard, count = self._samplers[ad], self._shards[ad], requests[ad]
            if self.mode == "blocked":
                sampler.sample_blocked_into(shard, count)
            else:
                sampler.sample_into(shard, count)

    def _cached_block(self, ad: int, chunk_index: int):
        cached = self._tail_blocks.get(ad)
        if cached is not None and cached[0] == chunk_index:
            return cached[1]
        return None

    def _splice_block(
        self, ad: int, chunk_index: int, lo: int, hi: int, block
    ) -> None:
        """Append sets ``[lo, hi)`` of the chunk to the ad's shard and
        cache the block when the chunk is still partially consumed."""
        members, lengths = _slice_flat(block[0], block[1], lo, hi)
        self._shards[ad].add_flat(members, lengths)
        self._samplers[ad].num_sampled += hi - lo
        if hi < self.chunk_size:
            self._tail_blocks[ad] = (chunk_index, block)
        else:
            self._tail_blocks.pop(ad, None)

    def _run_tasks_serial(self, tasks: list[tuple[int, int, int, int]]) -> None:
        for ad, chunk_index, lo, hi in tasks:
            block = self._cached_block(ad, chunk_index)
            if block is None:
                block = self._samplers[ad].sample_chunk_block(
                    self._plans[ad], chunk_index, mode=self.mode
                )
            self._splice_block(ad, chunk_index, lo, hi, block)

    def _run_tasks_process(self, tasks: list[tuple[int, int, int, int]]) -> None:
        executor = self._ensure_executor()
        blocks: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        futures = []
        try:
            for ad, chunk_index, lo, hi in tasks:
                block = self._cached_block(ad, chunk_index)
                if block is not None:
                    blocks[(ad, chunk_index)] = block
                else:
                    futures.append(
                        executor.submit(
                            _worker_sample_chunk, self._engine_id, ad, self.mode,
                            chunk_index,
                        )
                    )
            for future in futures:
                ad, chunk_index, members, lengths = future.result()
                blocks[(ad, chunk_index)] = (members, lengths)
            # Deterministic splice order (ascending ad, then chunk — the
            # order the task list was built in), independent of which worker
            # finished first.
            for ad, chunk_index, lo, hi in tasks:
                self._splice_block(ad, chunk_index, lo, hi, blocks[(ad, chunk_index)])
        except BaseException:
            # A failed batch (worker crash, submit error, splice error)
            # leaves the request partially applied; don't also leak the
            # worker pool — cancel what hasn't started and route through
            # the idempotent close().
            for future in futures:
                future.cancel()
            self.close()
            raise

    # ------------------------------------------------------------------
    # Process-pool plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _fork_available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def _ensure_executor(self) -> ProcessPoolExecutor:
        executor = self._resources["executor"]
        if executor is None:
            workers = self._max_workers
            if workers is None:
                workers = max(1, os.cpu_count() or 1)
            executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
            )
            self._resources["executor"] = executor
        return executor

    def close(self) -> None:
        """Shut down the worker pool and release the fork payload.

        Idempotent: the teardown callback is shared with the GC
        finalizer and runs at most once however many times it is
        triggered.
        """
        if self._finalizer.alive:
            self._finalizer()

    def __enter__(self) -> "ShardedSamplingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _warn_no_fork(self) -> None:
        # The engine id makes the message unique per instance, so the
        # warnings registry's once-per-location dedup cannot swallow the
        # warning for every engine after the first in a process.
        warnings.warn(
            f"fork start method unavailable; ShardedSamplingEngine "
            f"#{self._engine_id} (engine='process') will sample serially",
            RuntimeWarning,
            stacklevel=4,
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(h={self.num_ads}, mode={self.mode!r}, "
            f"engine={self.engine!r}, rng={self.rng!r}, "
            f"chunk_size={self.chunk_size}, backend={self.backend_name!r}, "
            f"total_sets={self.total_sets()})"
        )
