"""The paper-facing core API: Problem 1 and its allocators in one place.

``repro.core`` is a stable, flat namespace over the pieces a user needs
to state and solve a regret-minimization instance; the subpackages hold
the substrates (graph, topics, diffusion, RR-sets) those pieces build on.
"""

from repro.advertising import (
    AdAllocationProblem,
    AdCatalog,
    Advertiser,
    Allocation,
    AttentionBounds,
    RegretBreakdown,
)
from repro.algorithms import (
    AllocationResult,
    Allocator,
    GreedyAllocator,
    GreedyIRIEAllocator,
    MyopicAllocator,
    MyopicPlusAllocator,
    RegretBounds,
    TIRMAllocator,
    compute_bounds,
)
from repro.evaluation import EvaluationReport, RegretEvaluator, run_allocator

__all__ = [
    "Advertiser",
    "AdCatalog",
    "Allocation",
    "AttentionBounds",
    "AdAllocationProblem",
    "RegretBreakdown",
    "Allocator",
    "AllocationResult",
    "GreedyAllocator",
    "TIRMAllocator",
    "MyopicAllocator",
    "MyopicPlusAllocator",
    "GreedyIRIEAllocator",
    "RegretBounds",
    "compute_bounds",
    "RegretEvaluator",
    "EvaluationReport",
    "run_allocator",
]
