"""Simulated stand-ins for the four evaluation networks (Table 1–2).

Each factory mirrors the corresponding §6 configuration — graph shape,
probability regime, topic structure, CTPs, budgets, CPEs — at a
``scale`` fraction of the original node count (default 1/10th for the
quality datasets, 1/100th for the scalability ones, so the default
objects are laptop-sized).  Budgets scale with the node count so the
"thousands of seeds required" regime of §6 is preserved relatively.

See DESIGN.md §3 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.graph.generators import community_graph, power_law_graph
from repro.graph.probabilities import weighted_cascade_probabilities
from repro.topics.ctp import uniform_ctps
from repro.topics.distribution import TopicDistribution
from repro.topics.model import TopicModel
from repro.topics.synthetic import synthetic_topic_model
from repro.utils.rng import as_generator


def _skewed_catalog(num_ads, num_topics, budgets, cpes) -> AdCatalog:
    """Ads with 0.91 topic mass on their own topic (the §6 recipe)."""
    advertisers = []
    for i in range(num_ads):
        advertisers.append(
            Advertiser(
                name=f"ad-{i}",
                budget=float(budgets[i]),
                cpe=float(cpes[i]),
                topics=TopicDistribution.skewed(num_topics, i % num_topics, mass=0.91),
            )
        )
    return AdCatalog(advertisers)


def flixster_like(
    *,
    scale: float = 0.1,
    num_ads: int = 10,
    num_topics: int = 10,
    attention_bound: int = 1,
    penalty: float = 0.0,
    seed: int = 7,
) -> AdAllocationProblem:
    """FLIXSTER stand-in: 30K nodes / 425K directed edges at scale 1.

    Learned-TIC-style sparse per-topic probabilities, ads with 0.91 mass
    on their own topic, CTPs ~ U[0.01, 0.03], budgets ~ U[200, 600] and
    CPEs ~ U[5, 6] (Table 2), scaled by ``scale``.
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    rng = as_generator(seed)
    n = max(int(30_000 * scale), 50)
    graph = power_law_graph(n, avg_out_degree=14.0, exponent=2.1, reciprocity=0.3, seed=rng)
    # Learned TIC probabilities are small (influence attempts rarely
    # succeed); a 0.05-mean home-topic strength keeps per-seed cascades
    # short so budgets need many seeds, the §6 regime.
    model = synthetic_topic_model(
        graph,
        num_topics,
        home_topics_per_edge=2,
        edge_strength_mean=0.05,
        background_strength=0.002,
        seed=rng,
    )
    budgets = rng.uniform(200.0, 600.0, size=num_ads) * scale
    cpes = rng.uniform(5.0, 6.0, size=num_ads)
    catalog = _skewed_catalog(num_ads, num_topics, budgets, cpes)
    ctps = uniform_ctps(num_ads, n, 0.01, 0.03, seed=rng)
    attention = AttentionBounds.uniform(n, attention_bound)
    return AdAllocationProblem.from_topic_model(
        model, catalog, attention, penalty=penalty, ctps=ctps
    )


def epinions_like(
    *,
    scale: float = 0.1,
    num_ads: int = 10,
    num_topics: int = 10,
    attention_bound: int = 1,
    penalty: float = 0.0,
    exponential_rate: float = 30.0,
    seed: int = 11,
) -> AdAllocationProblem:
    """EPINIONS stand-in: 76K nodes / 509K directed edges at scale 1.

    Per-topic influence probabilities drawn ``Exp(rate=30)`` via the
    inverse transform (§6), Flixster-style skewed ads, CTPs ~
    U[0.01, 0.03], budgets ~ U[100, 350] and CPEs ~ U[2.5, 6].
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    rng = as_generator(seed)
    n = max(int(76_000 * scale), 50)
    graph = power_law_graph(n, avg_out_degree=6.7, exponent=2.0, reciprocity=0.25, seed=rng)
    uniform = rng.random((num_topics, graph.num_edges))
    edge_probs = np.minimum(-np.log1p(-uniform) / exponential_rate, 1.0)
    seed_probs = rng.uniform(0.005, 0.05, size=(num_topics, graph.num_nodes))
    model = TopicModel(graph, edge_probs, seed_probs)
    budgets = rng.uniform(100.0, 350.0, size=num_ads) * scale
    cpes = rng.uniform(2.5, 6.0, size=num_ads)
    catalog = _skewed_catalog(num_ads, num_topics, budgets, cpes)
    ctps = uniform_ctps(num_ads, n, 0.01, 0.03, seed=rng)
    attention = AttentionBounds.uniform(n, attention_bound)
    return AdAllocationProblem.from_topic_model(
        model, catalog, attention, penalty=penalty, ctps=ctps
    )


def dblp_like(
    *,
    scale: float = 0.01,
    num_ads: int = 5,
    budget_per_ad: float | None = None,
    attention_bound: int = 1,
    penalty: float = 0.0,
    seed: int = 13,
) -> AdAllocationProblem:
    """DBLP stand-in: 317K nodes / 1.05M undirected edges at scale 1.

    Community structure, every edge directed both ways, weighted-cascade
    probabilities, CTP = CPE = 1 and identical topic profiles for all
    ads — the fully competitive §6.2 scalability setting.  The default
    per-ad budget mirrors the paper's 5K scaled by ``scale``.
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    rng = as_generator(seed)
    n = max(int(317_000 * scale), 60)
    # Communities of ~120 authors with p=0.05 give within-degree ≈ 6,
    # matching DBLP's average degree of ≈ 6.6 at every scale.
    graph = community_graph(
        n,
        num_communities=max(n // 120, 2),
        within_probability=0.05,
        between_edges_per_node=0.4,
        seed=rng,
    )
    probs = weighted_cascade_probabilities(graph)
    if budget_per_ad is None:
        budget_per_ad = max(5_000.0 * scale, 10.0)
    catalog = AdCatalog(
        [Advertiser(name=f"ad-{i}", budget=float(budget_per_ad), cpe=1.0) for i in range(num_ads)]
    )
    attention = AttentionBounds.uniform(n, attention_bound)
    return AdAllocationProblem(graph, catalog, probs, 1.0, attention, penalty)


def livejournal_like(
    *,
    scale: float = 0.002,
    num_ads: int = 5,
    budget_per_ad: float | None = None,
    attention_bound: int = 1,
    penalty: float = 0.0,
    seed: int = 17,
) -> AdAllocationProblem:
    """LIVEJOURNAL stand-in: 4.8M nodes / 69M directed edges at scale 1.

    Large directed power-law graph (average out-degree ≈ 14.4),
    weighted-cascade probabilities, CTP = CPE = 1.  The default per-ad
    budget mirrors the paper's 80K scaled by ``scale``.
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    rng = as_generator(seed)
    n = max(int(4_800_000 * scale), 100)
    graph = power_law_graph(n, avg_out_degree=14.4, exponent=2.3, reciprocity=0.5, seed=rng)
    probs = weighted_cascade_probabilities(graph)
    if budget_per_ad is None:
        budget_per_ad = max(80_000.0 * scale, 10.0)
    catalog = AdCatalog(
        [Advertiser(name=f"ad-{i}", budget=float(budget_per_ad), cpe=1.0) for i in range(num_ads)]
    )
    attention = AttentionBounds.uniform(n, attention_bound)
    return AdAllocationProblem(graph, catalog, probs, 1.0, attention, penalty)
