"""Datasets: the Fig.-1 toy gadget and simulated stand-ins for the four
real networks of Table 1 (see DESIGN.md §3 for the substitution notes).

All dataset factories are deterministic functions of their ``seed`` and
return ready-to-solve :class:`~repro.advertising.AdAllocationProblem`
instances.
"""

from repro.datasets.registry import DATASETS, load_dataset
from repro.datasets.synthetic import (
    dblp_like,
    epinions_like,
    flixster_like,
    livejournal_like,
)
from repro.datasets.toy import (
    figure1_allocation_a,
    figure1_allocation_b,
    figure1_gadget,
    figure1_problem,
)

__all__ = [
    "figure1_gadget",
    "figure1_problem",
    "figure1_allocation_a",
    "figure1_allocation_b",
    "flixster_like",
    "epinions_like",
    "dblp_like",
    "livejournal_like",
    "DATASETS",
    "load_dataset",
]
