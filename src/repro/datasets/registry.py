"""Name-based dataset lookup for the CLI and the benchmark harness."""

from __future__ import annotations

from typing import Callable

from repro.advertising.problem import AdAllocationProblem
from repro.datasets.synthetic import dblp_like, epinions_like, flixster_like, livejournal_like
from repro.datasets.toy import figure1_problem
from repro.errors import ConfigurationError

#: Registry of dataset factories keyed by their §6 names.
DATASETS: dict[str, Callable[..., AdAllocationProblem]] = {
    "figure1": figure1_problem,
    "flixster": flixster_like,
    "epinions": epinions_like,
    "dblp": dblp_like,
    "livejournal": livejournal_like,
}


def load_dataset(name: str, **kwargs) -> AdAllocationProblem:
    """Build a dataset by name; ``kwargs`` go to the factory.

    >>> problem = load_dataset("figure1")
    >>> problem.num_ads
    4
    """
    try:
        factory = DATASETS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise ConfigurationError(f"unknown dataset {name!r}; known: {known}") from None
    return factory(**kwargs)
