"""The six-node gadget of Fig. 1 and Examples 1–2.

Topology (node ids 0..5 for v1..v6)::

    v1 ─0.2─▶ v3 ─0.5─▶ v4 ─0.1─▶ v6
    v2 ─0.2─▶ v3 ─0.5─▶ v5 ─0.1─▶ v6

Four ads {a, b, c, d} share the edge probabilities; CTPs are uniform per
ad (0.9 / 0.8 / 0.7 / 0.6), budgets are (4, 2, 2, 1), every CPE is 1 and
every attention bound is 1.

The paper computes expected clicks 5.55 for Allocation A (everything to
ad a) and 6.3 for Allocation B (the virality-aware split), treating v4
and v5 as independent when scoring v6 — exact possible-world enumeration
differs in the third decimal (they share ancestor v3; see DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.advertiser import Advertiser
from repro.advertising.attention import AttentionBounds
from repro.advertising.catalog import AdCatalog
from repro.advertising.problem import AdAllocationProblem
from repro.graph.digraph import DirectedGraph

#: Paper's (rounded, independence-approximated) expected clicks.
PAPER_EXPECTED_CLICKS_A = 5.55
PAPER_EXPECTED_CLICKS_B = 6.3
#: Paper's regrets at λ = 0 (Example 1) and λ = 0.1 (Example 2).
PAPER_REGRET_A_LAMBDA0 = 6.6
PAPER_REGRET_B_LAMBDA0 = 2.7
PAPER_REGRET_A_LAMBDA01 = 7.2
PAPER_REGRET_B_LAMBDA01 = 3.3

_EDGES = [(0, 2), (1, 2), (2, 3), (2, 4), (3, 5), (4, 5)]
_EDGE_PROBS = {(0, 2): 0.2, (1, 2): 0.2, (2, 3): 0.5, (2, 4): 0.5, (3, 5): 0.1, (4, 5): 0.1}
_CTPS = [0.9, 0.8, 0.7, 0.6]
_BUDGETS = [4.0, 2.0, 2.0, 1.0]
_AD_NAMES = ["a", "b", "c", "d"]


def figure1_gadget() -> tuple[DirectedGraph, np.ndarray]:
    """The gadget graph and its per-canonical-edge probabilities."""
    graph = DirectedGraph.from_edges(_EDGES, num_nodes=6)
    probs = np.zeros(graph.num_edges)
    for (u, v), p in _EDGE_PROBS.items():
        probs[graph.edge_id(u, v)] = p
    return graph, probs


def figure1_problem(penalty: float = 0.0) -> AdAllocationProblem:
    """The full four-ad Problem-1 instance of Fig. 1 / Examples 1–2."""
    graph, probs = figure1_gadget()
    catalog = AdCatalog(
        [Advertiser(name=name, budget=b, cpe=1.0) for name, b in zip(_AD_NAMES, _BUDGETS)]
    )
    edge_probabilities = np.tile(probs, (len(catalog), 1))
    ctps = np.repeat(np.asarray(_CTPS)[:, None], graph.num_nodes, axis=1)
    attention = AttentionBounds.uniform(graph.num_nodes, 1)
    return AdAllocationProblem(graph, catalog, edge_probabilities, ctps, attention, penalty)


def figure1_allocation_a() -> Allocation:
    """Allocation A: every user gets ad ``a`` (Myopic's choice)."""
    return Allocation.from_seed_sets([[0, 1, 2, 3, 4, 5], [], [], []], num_nodes=6)


def figure1_allocation_b() -> Allocation:
    """Allocation B: ⟨v1,a⟩ ⟨v2,a⟩ ⟨v3,b⟩ ⟨v4,c⟩ ⟨v5,c⟩ ⟨v6,d⟩."""
    return Allocation.from_seed_sets([[0, 1], [2], [3, 4], [5]], num_nodes=6)
