"""Evaluation harness: the neutral Monte-Carlo referee and the
experiment sweeps that regenerate the paper's figures and tables (§6).
"""

from repro.evaluation.evaluator import EvaluationReport, RegretEvaluator
from repro.evaluation.experiments import (
    ExperimentRecord,
    run_allocator,
    sweep_attention_bounds,
    sweep_penalties,
)
from repro.evaluation.export import records_to_csv, records_to_json
from repro.evaluation.metrics import relative_regret, targeted_node_counts
from repro.evaluation.reporting import format_records, format_series, format_table
from repro.evaluation.statistics import (
    BootstrapInterval,
    PairedComparison,
    bootstrap_mean,
    paired_regret_comparison,
)

__all__ = [
    "RegretEvaluator",
    "EvaluationReport",
    "ExperimentRecord",
    "run_allocator",
    "sweep_attention_bounds",
    "sweep_penalties",
    "relative_regret",
    "targeted_node_counts",
    "format_table",
    "format_series",
    "format_records",
    "BootstrapInterval",
    "bootstrap_mean",
    "PairedComparison",
    "paired_regret_comparison",
    "records_to_csv",
    "records_to_json",
]
