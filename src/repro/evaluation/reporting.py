"""Plain-text reporting in the layout of the paper's figures and tables.

The benchmark harness prints these to stdout so ``pytest benchmarks/``
output can be compared side-by-side with the paper (EXPERIMENTS.md
records that comparison).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.evaluation.experiments import ExperimentRecord


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str = "",
) -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    for idx, row in enumerate(cells):
        lines.append(" | ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if idx == 0:
            lines.append(separator)
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_series(
    x_name: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
    *,
    title: str = "",
) -> str:
    """A figure rendered as a table: one x column, one column per line."""
    headers = [x_name, *series.keys()]
    rows = []
    for idx, x in enumerate(x_values):
        rows.append([x, *(values[idx] for values in series.values())])
    return format_table(headers, rows, title=title)


def format_records(
    records: Sequence[ExperimentRecord],
    *,
    value: str = "total_regret",
    title: str = "",
) -> str:
    """Pivot experiment records: parameters as rows, algorithms as columns."""
    algorithms = sorted({r.algorithm for r in records})
    param_keys: list[tuple] = []
    for record in records:
        key = tuple(sorted(record.parameters.items()))
        if key not in param_keys:
            param_keys.append(key)
    by_cell = {
        (tuple(sorted(r.parameters.items())), r.algorithm): getattr(r, value)
        for r in records
    }
    x_label = ", ".join(k for k, _ in param_keys[0]) if param_keys else "params"
    headers = [x_label, *algorithms]
    rows = []
    for key in param_keys:
        label = ", ".join(str(v) for _, v in key)
        rows.append([label, *(by_cell.get((key, algo), "-") for algo in algorithms)])
    return format_table(headers, rows, title=title)
