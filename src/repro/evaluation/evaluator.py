"""The neutral Monte-Carlo referee (§6).

The paper evaluates the final seed sets of *every* algorithm with 10K
Monte-Carlo simulations "for neutral, fair, and accurate comparisons" —
regardless of how each algorithm estimated spread internally.  The
:class:`RegretEvaluator` is that referee: it re-measures the revenue of
each ad's seed set under the TIC-CTP model and produces the ground-truth
regret breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.problem import AdAllocationProblem
from repro.advertising.regret import RegretBreakdown, allocation_regret
from repro.diffusion.ic import estimate_spread
from repro.errors import ConfigurationError
from repro.utils.rng import spawn_generators


@dataclass(frozen=True)
class EvaluationReport:
    """Ground-truth evaluation of one allocation."""

    algorithm: str
    regret: RegretBreakdown
    revenue_std_errors: np.ndarray
    num_runs: int
    num_targeted_users: int
    total_seeds: int

    @property
    def total_regret(self) -> float:
        """Eq. (4) under measured revenues."""
        return self.regret.total

    def __repr__(self) -> str:
        return (
            f"EvaluationReport({self.algorithm}, regret={self.total_regret:.4g}, "
            f"runs={self.num_runs})"
        )


class RegretEvaluator:
    """Measures allocations with Monte-Carlo TIC-CTP simulation.

    Parameters
    ----------
    problem:
        The instance whose ground truth is being measured.
    num_runs:
        Simulations per ad (paper: 10 000; tests/benches use fewer).
    seed:
        Master seed; each ad gets an independent child stream.
    """

    def __init__(
        self, problem: AdAllocationProblem, *, num_runs: int = 10_000, seed=None
    ) -> None:
        if num_runs < 1:
            raise ConfigurationError("num_runs must be >= 1")
        self.problem = problem
        self.num_runs = int(num_runs)
        self._seed = seed

    def measure_revenues(self, allocation: Allocation) -> tuple[np.ndarray, np.ndarray]:
        """Monte-Carlo ``Π_i(S_i)`` and standard errors for every ad."""
        problem = self.problem
        if allocation.num_ads != problem.num_ads:
            raise ConfigurationError(
                f"allocation has {allocation.num_ads} ads, problem has {problem.num_ads}"
            )
        rngs = spawn_generators(self._seed, problem.num_ads)
        revenues = np.zeros(problem.num_ads)
        errors = np.zeros(problem.num_ads)
        for ad in range(problem.num_ads):
            seeds = allocation.seed_array(ad)
            if seeds.size == 0:
                continue
            estimate = estimate_spread(
                problem.graph,
                problem.ad_edge_probabilities(ad),
                seeds,
                ctps=problem.ad_ctps(ad),
                num_runs=self.num_runs,
                seed=rngs[ad],
            )
            cpe = problem.catalog[ad].cpe
            revenues[ad] = cpe * estimate.mean
            errors[ad] = cpe * estimate.std_error
        return revenues, errors

    def evaluate(self, allocation: Allocation, *, algorithm: str = "?") -> EvaluationReport:
        """Full ground-truth report for an allocation."""
        revenues, errors = self.measure_revenues(allocation)
        breakdown = allocation_regret(
            revenues,
            self.problem.catalog.budgets(),
            allocation.seed_counts(),
            self.problem.penalty,
        )
        return EvaluationReport(
            algorithm=algorithm,
            regret=breakdown,
            revenue_std_errors=errors,
            num_runs=self.num_runs,
            num_targeted_users=len(allocation.targeted_users()),
            total_seeds=allocation.total_seeds(),
        )
