"""Statistical comparison utilities for experiment reports.

The paper compares algorithms by point estimates over 10K MC runs; at
the reduced scales this reproduction runs at, sampling noise matters, so
the benchmark analysis uses bootstrap confidence intervals and paired
comparisons from per-ad regret vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator


@dataclass(frozen=True)
class BootstrapInterval:
    """A bootstrap percentile confidence interval for a mean."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __repr__(self) -> str:
        return (
            f"BootstrapInterval({self.estimate:.4g} "
            f"[{self.low:.4g}, {self.high:.4g}] @ {self.confidence:.0%})"
        )


def bootstrap_mean(
    values,
    *,
    confidence: float = 0.95,
    num_resamples: int = 2_000,
    seed=None,
) -> BootstrapInterval:
    """Percentile-bootstrap CI for the mean of ``values``."""
    array = np.asarray(values, dtype=np.float64).ravel()
    if array.size == 0:
        raise ValueError("values must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if num_resamples < 1:
        raise ValueError("num_resamples must be >= 1")
    rng = as_generator(seed)
    samples = rng.choice(array, size=(num_resamples, array.size), replace=True)
    means = samples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return BootstrapInterval(
        estimate=float(array.mean()),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Bootstrap comparison of two paired per-ad regret vectors."""

    mean_difference: float
    interval: BootstrapInterval
    win_rate: float

    @property
    def significant(self) -> bool:
        """True when the CI of the difference excludes zero."""
        return not self.interval.contains(0.0)

    def __repr__(self) -> str:
        return (
            f"PairedComparison(diff={self.mean_difference:.4g}, "
            f"win_rate={self.win_rate:.0%}, significant={self.significant})"
        )


def paired_regret_comparison(
    regrets_a,
    regrets_b,
    *,
    confidence: float = 0.95,
    num_resamples: int = 2_000,
    seed=None,
) -> PairedComparison:
    """Compare per-ad regrets of algorithm A vs B (paired by ad).

    ``mean_difference < 0`` with ``significant`` means A's regret is
    reliably lower.  ``win_rate`` is the fraction of ads where A beats B.
    """
    a = np.asarray(regrets_a, dtype=np.float64).ravel()
    b = np.asarray(regrets_b, dtype=np.float64).ravel()
    if a.shape != b.shape or a.size == 0:
        raise ValueError("regret vectors must be non-empty and aligned")
    differences = a - b
    interval = bootstrap_mean(
        differences, confidence=confidence, num_resamples=num_resamples, seed=seed
    )
    return PairedComparison(
        mean_difference=float(differences.mean()),
        interval=interval,
        win_rate=float((differences < 0).mean()),
    )
