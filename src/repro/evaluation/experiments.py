"""Experiment sweeps: the parameterised loops behind Figs. 3–6 and
Tables 3–4.

Each helper takes a *problem factory* (so every grid point gets a fresh
instance with the right κ/λ), a dict of allocators, and an evaluation
run count; it returns flat :class:`ExperimentRecord` rows that the
benchmark harness prints in the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.advertising.problem import AdAllocationProblem
from repro.algorithms.base import AllocationResult, Allocator
from repro.evaluation.evaluator import EvaluationReport, RegretEvaluator


@dataclass(frozen=True)
class ExperimentRecord:
    """One grid point of one algorithm in one sweep."""

    experiment: str
    algorithm: str
    parameters: Mapping[str, Any]
    total_regret: float
    relative_regret: float
    num_targeted_users: int
    total_seeds: int
    runtime_seconds: float
    extras: Mapping[str, Any] = field(default_factory=dict)


def run_allocator(
    problem: AdAllocationProblem,
    allocator: Allocator,
    *,
    eval_runs: int = 1_000,
    eval_seed=None,
) -> tuple[AllocationResult, EvaluationReport]:
    """Allocate, then referee with Monte Carlo — the §6 protocol."""
    result = allocator.allocate(problem)
    evaluator = RegretEvaluator(problem, num_runs=eval_runs, seed=eval_seed)
    report = evaluator.evaluate(result.allocation, algorithm=allocator.name)
    return result, report


def _record(experiment, allocator_name, params, result, report) -> ExperimentRecord:
    return ExperimentRecord(
        experiment=experiment,
        algorithm=allocator_name,
        parameters=dict(params),
        total_regret=report.total_regret,
        relative_regret=report.regret.relative_to_budget(),
        num_targeted_users=report.num_targeted_users,
        total_seeds=report.total_seeds,
        runtime_seconds=result.runtime_seconds,
        extras={
            "signed_gaps": report.regret.signed_budget_gaps().tolist(),
            "stats": dict(result.stats),
        },
    )


def sweep_attention_bounds(
    experiment: str,
    problem_factory: Callable[[int], AdAllocationProblem],
    allocators: Mapping[str, Allocator],
    attention_bounds,
    *,
    eval_runs: int = 1_000,
    eval_seed=None,
) -> list[ExperimentRecord]:
    """The Fig.-3 / Table-3 sweep: regret and targeting vs. ``κ_u``.

    ``problem_factory(kappa)`` must return the instance with that
    uniform attention bound (and whatever λ the caller fixed).
    """
    records = []
    for kappa in attention_bounds:
        problem = problem_factory(int(kappa))
        for name, allocator in allocators.items():
            result, report = run_allocator(
                problem, allocator, eval_runs=eval_runs, eval_seed=eval_seed
            )
            records.append(
                _record(experiment, name, {"kappa": int(kappa)}, result, report)
            )
    return records


def sweep_penalties(
    experiment: str,
    problem_factory: Callable[[float], AdAllocationProblem],
    allocators: Mapping[str, Allocator],
    penalties,
    *,
    eval_runs: int = 1_000,
    eval_seed=None,
) -> list[ExperimentRecord]:
    """The Fig.-4 sweep: regret vs. λ at fixed κ."""
    records = []
    for penalty in penalties:
        problem = problem_factory(float(penalty))
        for name, allocator in allocators.items():
            result, report = run_allocator(
                problem, allocator, eval_runs=eval_runs, eval_seed=eval_seed
            )
            records.append(
                _record(experiment, name, {"lambda": float(penalty)}, result, report)
            )
    return records
