"""Exporting experiment records to CSV / JSON.

The benchmark harness prints paper-layout tables; downstream analysis
(plotting, regression dashboards) wants machine-readable records.  Both
exporters flatten :class:`~repro.evaluation.experiments.ExperimentRecord`
rows the same way: one row per (experiment, algorithm, grid point).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence

from repro.evaluation.experiments import ExperimentRecord

_BASE_FIELDS = (
    "experiment",
    "algorithm",
    "total_regret",
    "relative_regret",
    "num_targeted_users",
    "total_seeds",
    "runtime_seconds",
)


def record_to_dict(record: ExperimentRecord, *, include_extras: bool = False) -> dict:
    """Flatten one record: base fields + ``param_*`` columns."""
    row = {field: getattr(record, field) for field in _BASE_FIELDS}
    for key, value in sorted(record.parameters.items()):
        row[f"param_{key}"] = value
    if include_extras:
        row["extras"] = dict(record.extras)
    return row


def records_to_json(
    records: Sequence[ExperimentRecord],
    path=None,
    *,
    include_extras: bool = True,
    indent: int = 2,
) -> str:
    """Serialise records to JSON; writes to ``path`` when given."""
    payload = [record_to_dict(r, include_extras=include_extras) for r in records]
    text = json.dumps(payload, indent=indent, default=float)
    if path is not None:
        Path(path).write_text(text)
    return text


def records_to_csv(records: Sequence[ExperimentRecord], path) -> None:
    """Write records as CSV with a union-of-parameters header.

    Records from different sweeps may carry different parameter names;
    missing cells are left empty.
    """
    rows = [record_to_dict(r) for r in records]
    param_fields = sorted({k for row in rows for k in row if k.startswith("param_")})
    fieldnames = list(_BASE_FIELDS) + param_fields
    with open(Path(path), "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in fieldnames})


def load_records_json(path) -> list[dict]:
    """Read back a JSON export (as plain dicts, for analysis scripts)."""
    return json.loads(Path(path).read_text())
