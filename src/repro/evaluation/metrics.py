"""Derived metrics used across the §6 figures and tables."""

from __future__ import annotations

import numpy as np

from repro.advertising.allocation import Allocation
from repro.advertising.regret import RegretBreakdown


def relative_regret(breakdown: RegretBreakdown) -> float:
    """Total regret as a fraction of total budget (the §6.1 headline)."""
    return breakdown.relative_to_budget()


def targeted_node_counts(allocations: "dict[str, Allocation]") -> dict[str, int]:
    """Distinct targeted users per algorithm — one Table-3 cell each."""
    return {name: len(a.targeted_users()) for name, a in allocations.items()}


def overshoot_count(breakdown: RegretBreakdown) -> int:
    """How many ads ended with revenue above budget (Fig. 5 discussion)."""
    return int(np.sum(breakdown.signed_budget_gaps() > 0))


def undershoot_count(breakdown: RegretBreakdown) -> int:
    """How many ads fell short of their budget."""
    return int(np.sum(breakdown.signed_budget_gaps() < 0))


def regret_skew(breakdown: RegretBreakdown) -> float:
    """Max/median ratio of per-ad budget-regrets — the "heavy skew" the
    paper observes for Greedy-IRIE on Flixster (Fig. 5a).  Returns 0 for
    degenerate (all-zero) regret vectors."""
    regrets = breakdown.budget_regrets()
    median = float(np.median(regrets))
    if median <= 0:
        return 0.0
    return float(regrets.max() / median)
