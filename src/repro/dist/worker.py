"""The stateless half of the distributed tier: one socket worker.

``repro worker --connect HOST:PORT`` runs one :class:`WorkerHost`: it
dials the coordinator, announces itself (HELLO), and then serves TASK
frames until the coordinator says SHUTDOWN (or vanishes).  Per session
it receives the payload once — graph in-CSR, per-ad probability rows,
stream entropies — in exactly the layout the spawn arena uses
(:func:`repro.rrset.sharded._payload_parts`), rebuilds zero-copy views,
and re-derives any requested chunk purely from
``(entropy, ad, chunk)``: no sampler state ever crosses the wire, which
is why a chunk can be recomputed by *any* worker after a failure and
still be byte-identical.

With ``--cache DIR`` the worker consults (and feeds) a local
content-addressed shard store before sampling — the shard keys arrive
in the session meta, so a worker parked next to a warm cache serves
chunks without invoking its backend at all.

The worker's backend (``--backend numpy|numba|auto``) is provenance,
not contract: every backend produces byte-identical blocks, so a fleet
may mix them freely.

Chaos hooks: the three ``_compute_result`` / ``_before_result`` /
``_send_result`` seams exist so the fault-injection harness
(``tests/dist/chaos.py``) can corrupt, stall, or kill a worker at exact
chunk boundaries without touching the protocol code it is testing.
"""

from __future__ import annotations

import os
import socket

import numpy as np

from repro.dist import frames
from repro.errors import ConfigurationError, ProtocolError
from repro.rrset.backends import resolve_backend
from repro.rrset.sampler import RRSetSampler, StreamPlan
from repro.rrset.sharded import _graph_from_arrays

#: Seconds to wait for the initial TCP connect.
CONNECT_TIMEOUT = 10.0


class WorkerExit(Exception):
    """Internal control flow: a chaos hook (or SHUTDOWN frame) asked the
    worker to stop serving.  Never crosses the public API."""


class _Session:
    """One registered session's rebuilt payload + lazy per-ad samplers."""

    __slots__ = ("meta", "graph", "probs_per_ad", "entropies", "chunk_size",
                 "shard_keys", "samplers")

    def __init__(self, meta: dict, payload: bytes) -> None:
        layout = meta.get("layout")
        if not isinstance(layout, list):
            raise ProtocolError("SETUP meta is missing the payload layout")
        arrays = {}
        for key, dtype, count, offset in layout:
            end = offset + count * np.dtype(dtype).itemsize
            if offset < 0 or end > len(payload):
                raise ProtocolError(
                    f"payload layout entry {key!r} overruns the "
                    f"{len(payload)}-byte payload"
                )
            arrays[key] = np.frombuffer(
                payload, dtype=np.dtype(dtype), count=count, offset=offset
            )
        self.meta = meta
        self.graph = _graph_from_arrays(
            meta["num_nodes"], meta["num_edges"], arrays
        )
        h = int(meta["h"])
        try:
            self.probs_per_ad = [arrays[f"probs_{ad}"] for ad in range(h)]
        except KeyError as exc:
            raise ProtocolError(f"payload is missing array {exc}") from exc
        self.entropies = [int(e) for e in meta["entropies"]]
        self.chunk_size = int(meta["chunk_size"])
        self.shard_keys = meta.get("shard_keys")
        self.samplers: dict[int, RRSetSampler] = {}


class WorkerHost:
    """One connection's worth of stateless chunk service.

    Parameters
    ----------
    host / port:
        The coordinator's bound address.
    cache:
        Optional local shard-store directory (or ready
        :class:`~repro.store.ShardCache`); consulted before sampling,
        fed after.  ``None`` defers to ``REPRO_CACHE`` like the engine.
    backend:
        This worker's blocked-BFS backend.  Provenance, not contract.
    name:
        Reported in HELLO and in the coordinator's worker table
        (default: ``pid-<pid>``).
    """

    def __init__(self, host: str, port: int, *, cache=None,
                 backend="numpy", name: str | None = None,
                 max_frame_bytes: int = frames.MAX_FRAME_BYTES) -> None:
        self.host = str(host)
        self.port = int(port)
        self.name = name or f"pid-{os.getpid()}"
        self.backend = resolve_backend(backend)
        self.max_frame_bytes = int(max_frame_bytes)
        from repro.store.cache import resolve_cache

        self._cache, self._cache_owned = resolve_cache(cache)
        self._sessions: dict[int, _Session] = {}
        self._pending_setup: dict | None = None
        #: Chunks served over this host's lifetime (chaos hooks key off
        #: it; the CLI prints it at exit).
        self.chunks_served = 0
        #: Chunks answered from the local cache without sampling.
        self.cache_hits = 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Connect, serve until SHUTDOWN / EOF / a chaos hook exit."""
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=CONNECT_TIMEOUT
            )
        except OSError as exc:
            raise ConfigurationError(
                f"cannot connect to coordinator at {self.host}:{self.port}: "
                f"{exc}"
            ) from exc
        try:
            sock.settimeout(None)
            frames.send_json(sock, frames.HELLO, {
                "protocol": frames.PROTOCOL_VERSION,
                "name": self.name,
                "backend": self.backend.name,
                "cache": self._cache is not None,
            })
            decoder = frames.FrameDecoder(self.max_frame_bytes)
            while True:
                frame = frames.recv_frame(sock, decoder)
                if frame is None:
                    break  # coordinator is gone; a clean exit
                try:
                    self._handle_frame(sock, *frame)
                except WorkerExit:
                    break
        finally:
            sock.close()
            if self._cache is not None and self._cache_owned:
                self._cache.close()

    # ------------------------------------------------------------------
    # Frame handling
    # ------------------------------------------------------------------
    def _handle_frame(self, sock, kind: int, payload: bytes) -> None:
        if kind == frames.SETUP:
            self._pending_setup = frames.parse_json(payload)
            return
        if kind == frames.PAYLOAD:
            meta, self._pending_setup = self._pending_setup, None
            if meta is None:
                raise ProtocolError("PAYLOAD frame without a preceding SETUP")
            self._sessions[int(meta["session"])] = _Session(meta, payload)
            return
        if kind == frames.TASK:
            self._handle_task(sock, frames.parse_json(payload))
            return
        if kind == frames.RELEASE:
            info = frames.parse_json(payload)
            self._sessions.pop(int(info.get("session", -1)), None)
            return
        if kind == frames.SHUTDOWN:
            raise WorkerExit
        raise ProtocolError(f"unexpected frame kind {kind} from coordinator")

    def _handle_task(self, sock, info: dict) -> None:
        try:
            session_id = int(info["session"])
            ad = int(info["ad"])
            chunk_index = int(info["chunk"])
            mode = str(info["mode"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed TASK frame: {exc}") from exc
        session = self._sessions.get(session_id)
        if session is None:
            frames.send_json(sock, frames.ERROR, {
                "error": f"unknown session {session_id}",
            })
            return
        payload = self._compute_result(session, ad, chunk_index, mode)
        self.chunks_served += 1
        self._before_result(ad, chunk_index)
        self._send_result(sock, ad, chunk_index, payload)

    # ------------------------------------------------------------------
    # Chunk computation (+ chaos seams)
    # ------------------------------------------------------------------
    def _compute_result(self, session: _Session, ad: int, chunk_index: int,
                        mode: str) -> bytes:
        """One packed RESULT payload for the addressed chunk — served
        from the local shard cache when possible, else re-derived from
        ``(entropy, ad, chunk)`` and written through."""
        if not 0 <= ad < len(session.probs_per_ad):
            raise ProtocolError(f"TASK addresses unknown ad {ad}")
        shard_key = None
        if self._cache is not None and session.shard_keys:
            shard_key = session.shard_keys[ad]
            entry = self._cache.load(shard_key, chunk_index)
            if entry is not None:
                try:
                    if entry.num_sets == session.chunk_size:
                        self.cache_hits += 1
                        return frames.pack_result(
                            ad, chunk_index, entry.members, entry.lengths
                        )
                finally:
                    entry.release()
        sampler = session.samplers.get(ad)
        if sampler is None:
            # Chunk streams come from the plan; the sampler seed is inert.
            sampler = RRSetSampler(
                session.graph, session.probs_per_ad[ad], seed=0,
                backend=self.backend,
            )
            session.samplers[ad] = sampler
        plan = StreamPlan(session.entropies[ad], ad, session.chunk_size)
        members, lengths = sampler.sample_chunk_block(
            plan, chunk_index, mode=mode
        )
        if shard_key is not None:
            self._cache.store(
                shard_key, chunk_index, members, lengths,
                meta={"ad": ad, "rng": "philox", "mode": mode,
                      "chunk_size": session.chunk_size,
                      "entropy": str(session.entropies[ad]),
                      "graph_hash": session.meta.get("graph_digest")},
            )
        return frames.pack_result(ad, chunk_index, members, lengths)

    def _before_result(self, ad: int, chunk_index: int) -> None:
        """Chaos seam: called between computing a result and sending it.
        The harness overrides this to stall (sleep past the coordinator
        timeout) or crash (raise :class:`WorkerExit`) at an exact chunk
        boundary.  The default does nothing."""

    def _send_result(self, sock, ad: int, chunk_index: int,
                     payload: bytes) -> None:
        """Chaos seam: ship one RESULT payload.  The harness overrides
        this to bit-flip the payload or send a truncated frame.  The
        default sends it faithfully."""
        frames.send_frame(sock, frames.RESULT, payload)
