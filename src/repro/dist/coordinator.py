"""The stateful half of the distributed tier: task queue + worker fleet.

One :class:`Coordinator` owns a listening socket, a deque of chunk
tasks, and one serving thread per connected worker.  Engines register
*sessions* (the payload a worker needs to re-derive any chunk: graph
CSR + probability rows + entropies) and submit ``(session, ad, chunk)``
tasks; workers receive each session's payload once per connection and
then stream RESULT blocks back.

Fault model — the coordinator owns retry/timeout/backoff, the workers
own nothing:

* **crash** — the connection drops (EOF, reset, or mid-frame): the
  worker is deregistered and its in-flight chunk is requeued.
* **stall** — no RESULT within ``task_timeout``: the socket read times
  out, the worker is dropped (a late result from a zombie must never
  race a requeued one), and the chunk is requeued.
* **corrupt** — a RESULT whose payload fails its blake2 digest (or
  addresses the wrong chunk): the worker is dropped and the chunk
  requeued.  The digest is the same one dsan records, so a corrupt
  block can never reach a shard.

Requeues carry a deterministic exponential backoff (no jitter — random
delays are banned by the determinism lint, and delay only schedules
*when* a chunk is retried, never *what* it contains).  A task that
exhausts ``max_retries`` fails its future with
:class:`TaskFailedError`; a queue with no workers for ``worker_grace``
seconds fails all queued futures with :class:`WorkersUnavailableError`
— the distributed engine answers both by computing the chunk locally,
so an allocation always completes, byte-identically.

Binding is loopback-only by default: a non-loopback host raises
:class:`~repro.errors.ConfigurationError` unless ``allow_remote=True``
(which still warns) — the protocol is unauthenticated.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError

from repro.dist import frames
from repro.dist.frames import FrameIntegrityError
from repro.errors import ConfigurationError, ProtocolError, ReproError
from repro.utils.validation import check_bind_host

#: Seconds a worker has to produce one RESULT before it counts as
#: stalled and loses the chunk.
DEFAULT_TASK_TIMEOUT = 30.0

#: Attempts per chunk before its future fails with TaskFailedError.
DEFAULT_MAX_RETRIES = 5

#: First requeue delay; doubles per attempt, capped at BACKOFF_CAP.
#: Deterministic by design — no jitter (R101/R102: scheduling noise is
#: acceptable only because it cannot change bytes, but the repo's rule
#: is simpler: no entropy outside the RNG seam, period).
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: Seconds the handshake (HELLO) may take before the connection is
#: dropped — keeps a port-scanner from pinning a serving thread.
HANDSHAKE_TIMEOUT = 10.0


class WorkersUnavailableError(ReproError):
    """No connected workers for longer than the coordinator's grace
    period (or the coordinator closed) while tasks were queued.  The
    distributed engine catches this and computes the chunk locally."""


class TaskFailedError(ReproError):
    """One chunk task exhausted its retry budget across workers.  The
    distributed engine catches this and computes the chunk locally."""


class _Task:
    __slots__ = ("session_id", "ad", "chunk", "mode", "future",
                 "attempts", "ready_at")

    def __init__(self, session_id: int, ad: int, chunk: int, mode: str) -> None:
        self.session_id = session_id
        self.ad = ad
        self.chunk = chunk
        self.mode = mode
        self.future: Future = Future()
        self.attempts = 0
        self.ready_at = 0.0

    def resolve(self, result) -> None:
        if not self.future.cancelled():
            try:
                self.future.set_result(result)
            except InvalidStateError:  # pragma: no cover - cancel race
                pass

    def fail(self, exc: BaseException) -> None:
        if not self.future.cancelled():
            try:
                self.future.set_exception(exc)
            except InvalidStateError:  # pragma: no cover - cancel race
                pass


class Coordinator:
    """Accepts workers, scatters chunk tasks, reassigns on failure.

    Thread layout: one accept loop, one monitor (zero-worker grace),
    and one serving thread per worker connection.  All shared state —
    the task deque, the session registry, the worker table, the stats —
    lives under one condition variable.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 allow_remote: bool = False,
                 task_timeout: float = DEFAULT_TASK_TIMEOUT,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 worker_grace: float | None = None,
                 max_frame_bytes: int = frames.MAX_FRAME_BYTES) -> None:
        self.host = check_bind_host(
            host, allow_remote=allow_remote, what="coordinator"
        )
        self.port = int(port)
        self.task_timeout = float(task_timeout)
        self.max_retries = int(max_retries)
        self.worker_grace = (
            float(worker_grace) if worker_grace is not None
            else max(self.task_timeout, 1.0)
        )
        self.max_frame_bytes = int(max_frame_bytes)
        self._cond = threading.Condition()
        self._queue: deque[_Task] = deque()
        self._sessions: dict[int, tuple[dict, bytes]] = {}
        self._released: set[int] = set()
        self._workers: dict[str, dict] = {}
        self._session_ids = itertools.count()
        self._worker_ids = itertools.count()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._stats = {
            "tasks_completed": 0,
            "retries": 0,
            "timeouts": 0,
            "disconnects": 0,
            "corrupt_blocks": 0,
            "workers_connected": 0,
        }
        self._events: deque[dict] = deque(maxlen=100)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._listener is not None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — valid after :meth:`start`."""
        return self.host, self.port

    def start(self) -> "Coordinator":
        """Bind, start the accept and monitor threads, return self."""
        if self._stop.is_set():
            raise ConfigurationError("coordinator is closed")
        if self._listener is not None:
            return self
        listener = socket.create_server((self.host, self.port))  # reprolint: disable=R104 -- ownership transfers: close() owns the single close after the accept loop exits; the error path below closes locally
        try:
            listener.settimeout(0.2)
            self.port = listener.getsockname()[1]
            self._listener = listener
            for name, target in (
                ("accept", self._accept_loop), ("monitor", self._monitor_loop),
            ):
                thread = threading.Thread(
                    target=target, name=f"repro-dist-{name}", daemon=True
                )
                thread.start()
                self._threads.append(thread)
        except BaseException:
            self._listener = None
            listener.close()
            raise
        return self

    def close(self) -> None:
        """Stop accepting, fail every queued future, disconnect every
        worker (best-effort SHUTDOWN frame), join the threads.
        Idempotent."""
        with self._cond:
            if self._stop.is_set():
                return
            self._stop.set()
            tasks = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        for task in tasks:
            task.fail(WorkersUnavailableError(
                f"coordinator closed with (ad={task.ad}, chunk={task.chunk}) "
                f"still queued"
            ))
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Engine-facing API
    # ------------------------------------------------------------------
    def register_session(self, meta: dict, payload: bytes) -> int:
        """Register one engine's worker payload; returns the session id
        every subsequent :meth:`submit` must carry."""
        with self._cond:
            if self._stop.is_set():
                raise ConfigurationError("coordinator is closed")
            session_id = next(self._session_ids)
            self._sessions[session_id] = (dict(meta), bytes(payload))
        return session_id

    def release_session(self, session_id: int) -> None:
        """Drop a session's payload; connected workers are told to drop
        theirs before their next task."""
        with self._cond:
            if self._sessions.pop(session_id, None) is not None:
                self._released.add(session_id)

    def submit(self, session_id: int, ad: int, chunk_index: int,
               mode: str) -> Future:
        """Queue one chunk task; the future resolves to the verified
        ``(members, lengths)`` block (or fails with
        :class:`TaskFailedError` / :class:`WorkersUnavailableError`)."""
        task = _Task(int(session_id), int(ad), int(chunk_index), str(mode))
        with self._cond:
            if self._stop.is_set():
                raise ConfigurationError("coordinator is closed")
            if session_id not in self._sessions:
                raise ConfigurationError(f"unknown session {session_id}")
            self._queue.append(task)
            self._cond.notify()
        return task.future

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> None:
        """Block until ``count`` workers are connected (handshaken)."""
        deadline = time.monotonic() + float(timeout)
        with self._cond:
            while len(self._workers) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ConfigurationError(
                        f"timed out waiting for {count} workers "
                        f"({len(self._workers)} connected)"
                    )
                self._cond.wait(min(remaining, 0.2))

    def stats(self) -> dict:
        """Provenance snapshot: retry/timeout/disconnect/corrupt
        counters, the worker table, and the last failure events."""
        with self._cond:
            snapshot = dict(self._stats)
            snapshot["workers"] = {
                name: dict(info) for name, info in self._workers.items()
            }
            snapshot["queued"] = len(self._queue)
            snapshot["events"] = [dict(event) for event in self._events]
        return snapshot

    # ------------------------------------------------------------------
    # Accept / monitor loops
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                conn, addr = listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # close() closed the listener under us
            thread = threading.Thread(
                target=self._serve_worker, args=(conn, addr),
                name="repro-dist-worker", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _monitor_loop(self) -> None:
        """Fail queued tasks once the fleet has been empty too long —
        the engine's signal to fall back to local compute instead of
        blocking forever on futures nobody will serve."""
        idle_since: float | None = None
        while not self._stop.wait(0.1):
            expired: list[_Task] = []
            with self._cond:
                if self._workers or not self._queue:
                    idle_since = None
                    continue
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                    continue
                if now - idle_since < self.worker_grace:
                    continue
                expired = list(self._queue)
                self._queue.clear()
                idle_since = None
            for task in expired:
                task.fail(WorkersUnavailableError(
                    f"no workers connected for {self.worker_grace:.1f}s with "
                    f"(ad={task.ad}, chunk={task.chunk}) queued"
                ))

    # ------------------------------------------------------------------
    # Worker serving
    # ------------------------------------------------------------------
    def _next_task(self, worker: str) -> _Task | None:
        """Pop the next ready task for this worker's thread; ``None``
        when the coordinator stops or the worker was deregistered.
        Tasks under backoff rotate to the back of the deque."""
        with self._cond:
            while True:
                if self._stop.is_set() or worker not in self._workers:
                    return None
                now = time.monotonic()
                delay: float | None = None
                for _ in range(len(self._queue)):
                    task = self._queue.popleft()
                    if task.future.cancelled():
                        continue
                    if task.ready_at <= now:
                        return task
                    self._queue.append(task)
                    remaining = task.ready_at - now
                    delay = remaining if delay is None else min(delay, remaining)
                self._cond.wait(0.2 if delay is None else min(delay, 0.2))

    def _requeue_locked(self, task: _Task, worker: str, kind: str) -> None:
        """Under the lock: count a failed attempt and either requeue the
        task with deterministic backoff or fail its future."""
        task.attempts += 1
        self._stats["retries"] += 1
        self._events.append({
            "kind": kind, "worker": worker,
            "ad": task.ad, "chunk": task.chunk, "attempt": task.attempts,
        })
        if task.attempts > self.max_retries:
            # fail() outside the lock would be nicer, but future
            # callbacks are not used here and set_exception is cheap.
            task.fail(TaskFailedError(
                f"(ad={task.ad}, chunk={task.chunk}) failed on {task.attempts} "
                f"workers (last: {kind} on {worker})"
            ))
            return
        task.ready_at = time.monotonic() + min(
            BACKOFF_BASE * (2 ** (task.attempts - 1)), BACKOFF_CAP
        )
        self._queue.append(task)
        self._cond.notify()

    def _serve_worker(self, conn: socket.socket, addr) -> None:
        worker = f"worker-{next(self._worker_ids)}"
        decoder = frames.FrameDecoder(self.max_frame_bytes)
        announced: set[int] = set()
        registered = False
        task: _Task | None = None
        failure: str | None = None
        try:
            conn.settimeout(HANDSHAKE_TIMEOUT)
            frame = frames.recv_frame(conn, decoder)
            if frame is None or frame[0] != frames.HELLO:
                raise ProtocolError(
                    f"{worker}: expected HELLO, got "
                    f"{'EOF' if frame is None else f'kind {frame[0]}'}"
                )
            hello = frames.parse_json(frame[1])
            if hello.get("protocol") != frames.PROTOCOL_VERSION:
                raise ProtocolError(
                    f"{worker}: protocol {hello.get('protocol')!r} != "
                    f"{frames.PROTOCOL_VERSION}"
                )
            name = hello.get("name")
            if name:
                worker = f"{name}#{worker.split('-')[-1]}"
            with self._cond:
                self._workers[worker] = {
                    "addr": f"{addr[0]}:{addr[1]}", "tasks": 0,
                }
                self._stats["workers_connected"] += 1
                registered = True
                self._cond.notify_all()
            while True:
                task = self._next_task(worker)
                if task is None:
                    break
                self._run_task(conn, decoder, worker, announced, task)
                task = None
        except TimeoutError:
            failure = "timeout"
        except FrameIntegrityError:
            failure = "corrupt"
        except (ProtocolError, ConnectionError, OSError):
            failure = "disconnect"
        finally:
            with self._cond:
                if registered:
                    self._workers.pop(worker, None)
                if failure is not None:
                    counter = {
                        "timeout": "timeouts",
                        "corrupt": "corrupt_blocks",
                        "disconnect": "disconnects",
                    }[failure]
                    self._stats[counter] += 1
                if task is not None:
                    self._requeue_locked(task, worker, failure or "disconnect")
                self._cond.notify_all()
            try:
                # Best-effort: tells a cleanly-finishing worker (fleet
                # drain, coordinator close) to exit instead of waiting
                # on a dead socket.
                frames.send_frame(conn, frames.SHUTDOWN)
            except OSError:
                pass
            conn.close()

    def _run_task(self, conn: socket.socket, decoder: frames.FrameDecoder,
                  worker: str, announced: set[int], task: _Task) -> None:
        """One task round-trip on one connection.  Any raise propagates
        to :meth:`_serve_worker`, which classifies it, requeues the
        task, and drops the worker."""
        self._flush_released(conn, announced)
        if task.session_id not in announced:
            with self._cond:
                session = self._sessions.get(task.session_id)
            if session is None:
                # Released while queued: nothing to compute against.
                task.fail(WorkersUnavailableError(
                    f"session {task.session_id} was released with "
                    f"(ad={task.ad}, chunk={task.chunk}) queued"
                ))
                return
            meta, payload = session
            frames.send_json(
                conn, frames.SETUP, {"session": task.session_id, **meta}
            )
            frames.send_frame(conn, frames.PAYLOAD, payload)
            announced.add(task.session_id)
        frames.send_json(conn, frames.TASK, {
            "session": task.session_id, "ad": task.ad,
            "chunk": task.chunk, "mode": task.mode,
        })
        conn.settimeout(self.task_timeout)
        frame = frames.recv_frame(conn, decoder)
        if frame is None:
            raise ProtocolError(f"{worker}: connection closed awaiting RESULT")
        kind, payload = frame
        if kind == frames.ERROR:
            info = frames.parse_json(payload)
            raise ProtocolError(f"{worker}: {info.get('error', 'worker error')}")
        if kind != frames.RESULT:
            raise ProtocolError(
                f"{worker}: expected RESULT, got kind {kind}"
            )
        ad, chunk, members, lengths = frames.unpack_result(payload)
        if (ad, chunk) != (task.ad, task.chunk):
            raise FrameIntegrityError(
                f"{worker}: RESULT addresses (ad={ad}, chunk={chunk}), "
                f"task was (ad={task.ad}, chunk={task.chunk})"
            )
        with self._cond:
            self._stats["tasks_completed"] += 1
            info = self._workers.get(worker)
            if info is not None:
                info["tasks"] += 1
        task.resolve((members, lengths))

    def _flush_released(self, conn: socket.socket,
                        announced: set[int]) -> None:
        """Tell this connection's worker to drop any session it holds
        that has since been released (lazy — sent before the next task,
        which is the first time the socket is writable by this thread)."""
        with self._cond:
            stale = [sid for sid in announced if sid in self._released]
        for sid in stale:
            frames.send_json(conn, frames.RELEASE, {"session": sid})
            announced.discard(sid)
