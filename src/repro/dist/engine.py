"""The engine seam over remote workers: :class:`DistributedEngine`.

A :class:`~repro.rrset.sharded.ShardedSamplingEngine` subclass that
overrides exactly one execution seam (``_dispatch_tasks``) plus
``prefetch``: chunk tasks are scattered to a
:class:`~repro.dist.coordinator.Coordinator` instead of a process pool,
and verified blocks are spliced back through the *same* parent-side
machinery — splice order, dsan recording, tail-block caching, shard
cache write-through — so serial, process-pool, and distributed runs are
byte-identical by construction.  ``TIRMAllocator``, the allocation
session, checkpointing, and the service tier run on it unchanged.

Fallback guarantee: a future that fails because the fleet is empty
(:class:`~repro.dist.coordinator.WorkersUnavailableError`) or a chunk
exhausted its retries (:class:`~repro.dist.coordinator.TaskFailedError`)
is computed locally with the engine's own samplers (warning once) —
the same pure ``(entropy, ad, chunk)`` function the worker would have
evaluated, so an allocation always completes with identical bytes.

Topology — worker count, worker backends, placement, the retry
schedule — is provenance, not contract: :meth:`dist_stats` feeds the
run's stats/provenance, and nothing in it can change a shard byte.
"""

from __future__ import annotations

import warnings
from typing import Mapping, Sequence

import numpy as np

from repro.dist.coordinator import (
    Coordinator,
    TaskFailedError,
    WorkersUnavailableError,
)
from repro.errors import ConfigurationError
from repro.graph.digraph import DirectedGraph
from repro.rrset.sampler import DEFAULT_CHUNK_SIZE
from repro.rrset.sharded import (
    ShardedSamplingEngine,
    _payload_layout,
    _payload_parts,
)

#: Coordinator spec keys accepted when the engine builds (and owns) its
#: own coordinator from a dict instead of borrowing an instance.
_COORDINATOR_SPEC_KEYS = frozenset({
    "host", "port", "allow_remote", "task_timeout", "max_retries",
    "worker_grace", "max_frame_bytes",
})


class DistributedEngine(ShardedSamplingEngine):
    """Chunk-parallel sampling over socket workers.

    Parameters (beyond the base engine's)
    -------------------------------------
    coordinator:
        A started (or startable) :class:`~repro.dist.Coordinator`
        instance — *borrowed*: the caller owns its lifetime — or a spec
        dict (``{"host": ..., "port": ..., ...}``) from which the
        engine builds a coordinator it owns and closes.
    """

    def __init__(
        self,
        graph: DirectedGraph,
        probs_per_ad: Sequence,
        *,
        coordinator,
        seeds=None,
        mode: str = "blocked",
        rng: str = "philox",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        backend="numpy",
        dsan: bool | None = None,
        dsan_expected: Mapping | None = None,
        cache=None,
        retain_blocks: bool = False,
        max_workers: int | None = None,
    ) -> None:
        if rng != "philox":
            raise ConfigurationError(
                "DistributedEngine requires rng='philox': legacy streams "
                "are stateful and strictly sequential, so chunks cannot be "
                "re-derived independently on remote workers"
            )
        # max_workers is accepted (the allocator passes its knob through)
        # but meaningless here: fleet size is however many workers dial
        # in — topology is provenance, not contract.
        del max_workers
        super().__init__(
            graph, list(probs_per_ad), seeds=seeds, mode=mode,
            engine="serial", rng="philox", chunk_size=chunk_size,
            backend=backend, transport="pickle", start_method="auto",
            dsan=dsan, dsan_expected=dsan_expected, cache=cache,
            retain_blocks=retain_blocks,
        )
        # Provenance strings: the base init validated its own knobs; the
        # distributed engine reports what it actually is.
        self.engine = "dist"
        self.transport = "socket"
        self._resources["transport"] = "socket"
        self._fallback_invocations = 0
        self._warned_fallback = False
        # Shard keys always exist on a distributed engine (the base only
        # derives them when a cache is configured): workers need them to
        # consult their *local* caches, and they cost one graph digest.
        if self._shard_keys is None:
            self._init_shard_keys()
        owned = False
        try:
            coordinator, owned = self._resolve_coordinator(coordinator)
            meta, payload = self._session_payload()
            self._session_id = coordinator.register_session(meta, payload)
        except BaseException:
            if owned:
                coordinator.close()
            self.close()
            raise
        self._coordinator = coordinator
        # The finalizer's resources dict is shared by reference, so the
        # session release rides the same idempotent teardown as every
        # other engine resource (close / GC, whichever comes first).
        self._resources["dist"] = (coordinator, self._session_id, owned)

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_coordinator(coordinator) -> tuple[Coordinator, bool]:
        if isinstance(coordinator, Coordinator):
            return coordinator.start(), False
        if isinstance(coordinator, Mapping):
            unknown = set(coordinator) - _COORDINATOR_SPEC_KEYS
            if unknown:
                raise ConfigurationError(
                    f"unknown coordinator spec keys {sorted(unknown)}; "
                    f"expected a subset of {sorted(_COORDINATOR_SPEC_KEYS)}"
                )
            return Coordinator(**coordinator).start(), True
        raise ConfigurationError(
            f"coordinator must be a repro.dist.Coordinator or a spec dict, "
            f"got {type(coordinator).__name__}"
        )

    def _session_payload(self) -> tuple[dict, bytes]:
        """The session's SETUP meta + flat PAYLOAD bytes — the same
        arrays, layout, and alignment as the spawn arena, so both worker
        substrates rebuild identical views."""
        from repro.utils.hashing import graph_digest

        parts = _payload_parts(self.graph, self._samplers)
        layout, total = _payload_layout(parts)
        payload = bytearray(total)
        for (key, dtype, count, offset), (_, array) in zip(layout, parts):
            np.frombuffer(
                payload, dtype=np.dtype(dtype), count=count, offset=offset
            )[:] = array
        meta = {
            "num_nodes": int(self.graph.num_nodes),
            "num_edges": int(self.graph.num_edges),
            "h": self.num_ads,
            "entropies": [int(e) for e in self._entropies],
            "chunk_size": self.chunk_size,
            "mode": self.mode,
            "graph_digest": graph_digest(self.graph),
            "shard_keys": list(self._shard_keys),
            "layout": layout,
        }
        return meta, bytes(payload)

    def _submit_remote(self, ad: int, chunk_index: int):
        # Remote submits are backend invocations performed on this run's
        # behalf (the process engine counts submits the same way); a
        # warm cache keeps this at zero because cached chunks are never
        # submitted.
        self.backend_invocations += 1
        return self._coordinator.submit(
            self._session_id, ad, chunk_index, self.mode
        )

    def _compute_fallback(self, ad: int, chunk_index: int, exc) -> tuple:
        if not self._warned_fallback:
            self._warned_fallback = True
            warnings.warn(
                f"DistributedEngine #{self._engine_id}: remote chunk "
                f"(ad={ad}, chunk={chunk_index}) failed ({exc}); computing "
                f"locally — results are byte-identical, only the substrate "
                f"changed",
                RuntimeWarning,
                stacklevel=4,
            )
        self._fallback_invocations += 1
        return self._samplers[ad].sample_chunk_block(
            self._plans[ad], chunk_index, mode=self.mode
        )

    # ------------------------------------------------------------------
    # The execution seam
    # ------------------------------------------------------------------
    def _dispatch_tasks(self, tasks: list[tuple[int, int, int, int]]) -> None:
        # A closed engine has no session left — serve in-process, like
        # the base engine serves a closed process engine serially.
        if not self._finalizer.alive:
            self._run_tasks_serial(tasks)
            return
        self._run_tasks_remote(tasks)

    def _run_tasks_remote(self, tasks: list[tuple[int, int, int, int]]) -> None:
        """The distributed analogue of ``_run_tasks_process``: harvest
        in-flight prefetches, serve memo/cache hits locally, scatter the
        rest to the fleet, splice in ascending ``(ad, chunk)`` order."""
        blocks: dict[tuple[int, int], tuple] = {}
        pending: dict[tuple[int, int], object] = {}
        cache_hits: set[tuple[int, int]] = set()
        try:
            for ad, chunk_index, lo, hi in tasks:
                key = (ad, chunk_index)
                inflight = self._inflight.pop(key, None)
                if inflight is not None:
                    pending[key] = inflight  # harvest prefetched work
                    continue
                block = self._cached_block(ad, chunk_index)
                if block is not None:
                    blocks[key] = block
                    continue
                if self._cache is not None and self._cache.has(
                    self._shard_keys[ad], chunk_index
                ):
                    cache_hits.add(key)
                    continue
                pending[key] = self._submit_remote(ad, chunk_index)
            # Deterministic splice order (ascending ad, then chunk),
            # independent of which worker answered first — same
            # discipline as the process pool.
            for ad, chunk_index, lo, hi in tasks:
                key = (ad, chunk_index)
                future = pending.pop(key, None)
                if future is None:
                    block = blocks.get(key)
                    if block is None and key in cache_hits:
                        if self._splice_from_cache(ad, chunk_index, lo, hi):
                            continue
                        block = self._samplers[ad].sample_chunk_block(
                            self._plans[ad], chunk_index, mode=self.mode
                        )
                        self.backend_invocations += 1
                        self._store_chunk(ad, chunk_index, block)
                    self._splice_block(ad, chunk_index, lo, hi, block)
                    continue
                try:
                    members, lengths = future.result()
                except (WorkersUnavailableError, TaskFailedError) as exc:
                    block = self._compute_fallback(ad, chunk_index, exc)
                else:
                    block = (members, lengths)
                self._store_chunk(ad, chunk_index, block)
                self._splice_block(ad, chunk_index, lo, hi, block)
        except BaseException:
            self._drain_futures(pending.values())
            self.close()
            raise

    def prefetch(self, targets: Mapping[int, int]) -> int:
        """Speculatively scatter upcoming chunks to the fleet (the
        distributed analogue of the process engine's prefetch); returns
        how many tasks were submitted.  No-op on a closed engine and
        for chunks already pooled, memoized, cached, or in flight."""
        extras = self._targets_to_extras(targets)
        if not self._finalizer.alive or not extras:
            return 0
        submitted = 0
        for ad in sorted(extras):
            start = self._shards[ad].num_total
            for chunk_index, _, _ in self._plans[ad].chunk_tasks(
                start, start + extras[ad]
            ):
                key = (ad, chunk_index)
                if (
                    key in self._inflight
                    or self._cached_block(ad, chunk_index) is not None
                    or (
                        self._cache is not None
                        and self._cache.has(self._shard_keys[ad], chunk_index)
                    )
                ):
                    continue
                self._inflight[key] = self._submit_remote(ad, chunk_index)
                submitted += 1
        return submitted

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------
    @property
    def coordinator(self) -> Coordinator:
        return self._coordinator

    @property
    def session_id(self) -> int:
        return self._session_id

    def dist_stats(self) -> dict:
        """Coordinator counters + this engine's local fallbacks — the
        topology provenance recorded in allocation stats.  Nothing in
        here can change a byte of any shard."""
        stats = self._coordinator.stats()
        stats["session"] = self._session_id
        stats["local_fallbacks"] = self._fallback_invocations
        return stats
