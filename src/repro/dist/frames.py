"""Length-prefixed binary frame codec for the coordinator/worker wire.

One frame is a fixed 16-byte header followed by a payload::

    <4s magic "RPF1"> <B kind> <3x pad> <q payload length>  payload...

Control frames (HELLO / SETUP / TASK / ERROR / RELEASE / SHUTDOWN)
carry a JSON object; PAYLOAD carries the raw session arena bytes; and
RESULT carries one full chunk block in the shard store's layout
(:mod:`repro.store.blocks`) — a 64-byte header followed by
``[int64 lengths | int32 members]``, stamped with the same blake2
digest the dsan and the shard cache use::

    <q ad> <q chunk> <q num_sets> <q num_members> <32s digest-hex>
    lengths[int64] members[int32]

The digest is computed by the worker over the arrays it sampled and
re-verified by the coordinator over the bytes it received
(:func:`unpack_result`), so a bit-flipped payload surfaces as
:class:`FrameIntegrityError` — the coordinator requeues the chunk
instead of splicing garbage.

Every malformed input — bad magic, unknown kind, negative or oversize
length prefix, truncated header, a connection dropped mid-frame —
raises :class:`~repro.errors.ProtocolError`; a clean EOF *between*
frames is not an error (:func:`recv_frame` returns ``None``).  The
:class:`FrameDecoder` is a socket-free incremental parser, so the
protocol fuzz tests drive it with raw byte streams directly.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.errors import ProtocolError
from repro.rrset.dsan import digest_block
from repro.rrset.pool import MEMBER_DTYPE

#: Wire magic: first bytes of every frame.  Distinct from the shard
#: store's ``RRSBLK01`` on purpose — a block file fed to a socket (or
#: the reverse) must fail loudly, not parse.
MAGIC = b"RPF1"

#: Bumped on any incompatible wire change; HELLO carries it and the
#: coordinator refuses mismatched workers.
PROTOCOL_VERSION = 1

_HEADER = struct.Struct("<4sB3xq")
HEADER_SIZE = _HEADER.size

# Frame kinds.
HELLO = 1      # worker -> coordinator: {"protocol", "name", ...}
SETUP = 2      # coordinator -> worker: session meta (dims, entropies, layout)
PAYLOAD = 3    # coordinator -> worker: the session's raw arena bytes
TASK = 4       # coordinator -> worker: {"session", "ad", "chunk", "mode"}
RESULT = 5     # worker -> coordinator: one packed chunk block (see above)
ERROR = 6      # worker -> coordinator: {"error": ...}
RELEASE = 7    # coordinator -> worker: {"session"} — drop session state
SHUTDOWN = 8   # coordinator -> worker: close down cleanly

FRAME_KINDS = frozenset(
    {HELLO, SETUP, PAYLOAD, TASK, RESULT, ERROR, RELEASE, SHUTDOWN}
)

#: Default ceiling on one frame's payload.  A chunk block is
#: ``chunk_size`` sets of bounded length; 256 MiB accommodates any
#: realistic session arena while keeping a hostile length prefix from
#: allocating unbounded memory.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_RESULT_HEADER = struct.Struct("<qqqq32s")
RESULT_HEADER_SIZE = _RESULT_HEADER.size

_LENGTH_DTYPE = np.dtype(np.int64)
_MEMBER_DTYPE = np.dtype(MEMBER_DTYPE)


class FrameIntegrityError(ProtocolError):
    """A structurally valid RESULT frame whose payload fails its digest
    (or addresses the wrong chunk) — the transport corrupted the block,
    or the worker lied.  The coordinator treats either the same way:
    drop the worker, requeue the chunk."""


def pack_frame(kind: int, payload: bytes = b"") -> bytes:
    """One wire frame: header + payload."""
    if kind not in FRAME_KINDS:
        raise ProtocolError(f"unknown frame kind {kind!r}")
    return _HEADER.pack(MAGIC, kind, len(payload)) + payload


def pack_json(kind: int, obj: dict) -> bytes:
    """A control frame carrying one JSON object."""
    return pack_frame(kind, json.dumps(obj).encode("utf-8"))


def parse_json(payload: bytes) -> dict:
    """Decode a control frame's payload; anything but a JSON object is
    a protocol violation."""
    try:
        parsed = json.loads(payload)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"control frame is not valid JSON: {exc}") from exc
    if not isinstance(parsed, dict):
        raise ProtocolError(
            f"control frame must carry a JSON object, got {type(parsed).__name__}"
        )
    return parsed


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    Feed received bytes with :meth:`feed`; :meth:`next_frame` yields
    complete ``(kind, payload)`` frames (``None`` while incomplete).
    Header validation happens as soon as the 16 header bytes are
    buffered, so a hostile length prefix is rejected *before* its
    payload is awaited, let alone allocated.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes buffered but not yet returned as a frame.  Nonzero at
        EOF means the peer vanished mid-frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def next_frame(self) -> tuple[int, bytes] | None:
        if len(self._buffer) < HEADER_SIZE:
            return None
        magic, kind, length = _HEADER.unpack_from(self._buffer)
        if magic != MAGIC:
            raise ProtocolError(
                f"bad frame magic {bytes(magic)!r} (expected {MAGIC!r})"
            )
        if kind not in FRAME_KINDS:
            raise ProtocolError(f"unknown frame kind {kind}")
        if length < 0:
            raise ProtocolError(f"negative frame length {length}")
        if length > self.max_frame_bytes:
            raise ProtocolError(
                f"frame length {length} exceeds the {self.max_frame_bytes}-"
                f"byte limit"
            )
        if len(self._buffer) < HEADER_SIZE + length:
            return None
        payload = bytes(self._buffer[HEADER_SIZE:HEADER_SIZE + length])
        del self._buffer[:HEADER_SIZE + length]
        return kind, payload

    def close(self) -> None:
        """Signal EOF: raises :class:`~repro.errors.ProtocolError` when
        the stream ended inside a frame."""
        if self._buffer:
            raise ProtocolError(
                f"connection closed mid-frame ({len(self._buffer)} bytes "
                f"into an incomplete frame)"
            )


def send_frame(sock, kind: int, payload: bytes = b"") -> None:
    """Write one frame to a connected socket."""
    sock.sendall(pack_frame(kind, payload))


def send_json(sock, kind: int, obj: dict) -> None:
    """Write one JSON control frame to a connected socket."""
    sock.sendall(pack_json(kind, obj))


def recv_frame(sock, decoder: FrameDecoder, *,
               bufsize: int = 1 << 16) -> tuple[int, bytes] | None:
    """Read one complete frame from a connected socket.

    Returns ``None`` on a clean EOF between frames; raises
    :class:`~repro.errors.ProtocolError` on EOF mid-frame or any header
    violation.  A socket timeout propagates as :class:`TimeoutError` —
    the coordinator's stall detection, never a hung ``recv``."""
    while True:
        frame = decoder.next_frame()
        if frame is not None:
            return frame
        data = sock.recv(bufsize)
        if not data:
            decoder.close()  # raises if mid-frame
            return None
        decoder.feed(data)


def pack_result(ad: int, chunk_index: int, members, lengths) -> bytes:
    """Pack one full chunk block into a RESULT payload, stamped with
    the same blake2 digest the dsan records for this block."""
    lengths = np.ascontiguousarray(lengths, dtype=_LENGTH_DTYPE)
    members = np.ascontiguousarray(members, dtype=_MEMBER_DTYPE)
    digest = digest_block(members, lengths).encode("ascii")
    header = _RESULT_HEADER.pack(
        int(ad), int(chunk_index), lengths.size, members.size, digest
    )
    return header + lengths.tobytes() + members.tobytes()


def unpack_result(payload: bytes) -> tuple[int, int, np.ndarray, np.ndarray]:
    """Parse and *verify* a RESULT payload.

    Structural violations (short header, inconsistent sizes) raise
    :class:`~repro.errors.ProtocolError`; a payload whose recomputed
    digest differs from its stamp raises :class:`FrameIntegrityError`.
    The returned arrays are fresh copies owned by the caller."""
    if len(payload) < RESULT_HEADER_SIZE:
        raise ProtocolError(
            f"RESULT payload truncated: {len(payload)} bytes is shorter "
            f"than the {RESULT_HEADER_SIZE}-byte header"
        )
    ad, chunk_index, num_sets, num_members, digest = _RESULT_HEADER.unpack_from(
        payload
    )
    if num_sets < 0 or num_members < 0:
        raise ProtocolError(
            f"RESULT header has negative sizes ({num_sets}, {num_members})"
        )
    expected = (
        RESULT_HEADER_SIZE
        + num_sets * _LENGTH_DTYPE.itemsize
        + num_members * _MEMBER_DTYPE.itemsize
    )
    if len(payload) != expected:
        raise ProtocolError(
            f"RESULT payload is {len(payload)} bytes; header promises "
            f"{expected}"
        )
    lengths = np.frombuffer(
        payload, dtype=_LENGTH_DTYPE, count=num_sets, offset=RESULT_HEADER_SIZE
    ).copy()
    members = np.frombuffer(
        payload, dtype=_MEMBER_DTYPE, count=num_members,
        offset=RESULT_HEADER_SIZE + num_sets * _LENGTH_DTYPE.itemsize,
    ).copy()
    if int(lengths.sum()) != num_members:
        raise ProtocolError(
            f"RESULT lengths sum to {int(lengths.sum())}, header promises "
            f"{num_members} members"
        )
    actual = digest_block(members, lengths).encode("ascii")
    if actual != digest:
        raise FrameIntegrityError(
            f"RESULT block for (ad={ad}, chunk={chunk_index}) fails its "
            f"digest: stamped {digest.decode('ascii', 'replace')}, "
            f"recomputed {actual.decode('ascii')}"
        )
    return int(ad), int(chunk_index), members, lengths
