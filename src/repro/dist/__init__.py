"""Distributed allocation tier: coordinator + stateless socket workers.

Counter-based RR addressing makes sampling location-free: every chunk
is a pure function of ``(graph digest, entropy, ad, chunk)``, so any
worker anywhere re-derives the same bytes.  This package carries that
purity over a socket:

:mod:`repro.dist.frames`
    Length-prefixed binary frame codec; RESULT frames reuse the shard
    store's ``[int64 lengths | int32 members]`` block layout and its
    blake2 digest stamping, so every block is integrity-checked on
    arrival.
:mod:`repro.dist.worker`
    :class:`WorkerHost` — the stateless worker (``repro worker
    --connect HOST:PORT``): receives one payload per session, re-derives
    chunks on demand, optionally consults a local shard cache.
:mod:`repro.dist.coordinator`
    :class:`Coordinator` — owns retry / timeout / backoff and chunk
    reassignment; a worker that dies, hangs, or returns a corrupt block
    has its chunk requeued to the survivors, byte-identically.
:mod:`repro.dist.engine`
    :class:`DistributedEngine` — the existing engine seam
    (``ensure`` / ``sample`` / ``prefetch`` / dsan) over remote workers,
    so :class:`~repro.algorithms.tirm.TIRMAllocator`, the allocation
    session, and the service tier run distributed unchanged.

**Topology is provenance, not contract**: worker count, worker
placement, per-worker backends, and the coordinator's retry schedule
never change a single byte of any shard — only ``stats``/``provenance``
record them.
"""

from repro.dist.coordinator import (
    Coordinator,
    TaskFailedError,
    WorkersUnavailableError,
)
from repro.dist.engine import DistributedEngine
from repro.dist.frames import FrameDecoder, FrameIntegrityError
from repro.dist.worker import WorkerHost

__all__ = [
    "Coordinator",
    "DistributedEngine",
    "FrameDecoder",
    "FrameIntegrityError",
    "TaskFailedError",
    "WorkerHost",
    "WorkersUnavailableError",
]
